"""Data model: findings, suppressions, and the per-file lint context."""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path
from typing import Iterator

#: ``# repro-lint: disable=rule-a,rule-b -- justification text``
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_,\-\s]+?)"
    r"(?:\s*--\s*(?P<reason>.*))?$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    justification: str | None = None

    def to_dict(self) -> dict:
        doc: dict = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
        }
        if self.justification is not None:
            doc["justification"] = self.justification
        return doc


@dataclass(frozen=True)
class Suppression:
    """One inline ``# repro-lint: disable=...`` comment.

    *rules* is the set of rule ids it silences; *line* is the physical
    line it applies to (the comment's own line — a standalone comment
    line also covers the next non-blank line, see
    :meth:`FileContext.suppression_for`).  *reason* is the mandatory
    ``-- justification`` tail; ``None`` means the suppression itself is
    a finding.
    """

    line: int
    rules: frozenset[str]
    reason: str | None
    standalone: bool  # the comment is the whole line (covers the next line)

    def covers(self, rule: str) -> bool:
        return rule in self.rules or "all" in self.rules


def _parse_suppressions(source: str) -> list[Suppression]:
    out: list[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _SUPPRESS_RE.search(tok.string)
            if m is None:
                continue
            rules = frozenset(
                r.strip() for r in m.group("rules").split(",") if r.strip()
            )
            reason = m.group("reason")
            reason = reason.strip() if reason and reason.strip() else None
            standalone = tok.line.strip().startswith("#")
            out.append(
                Suppression(
                    line=tok.start[0], rules=rules, reason=reason,
                    standalone=standalone,
                )
            )
    except tokenize.TokenError:
        pass  # syntax findings are reported by the runner, not masked here
    return out


class FileContext:
    """Everything a rule needs about one source file.

    Built once per file by the runner: the parsed AST, the raw lines
    (rules that read trailing comments — the lock-discipline annotations
    — index into these), the dotted module path used for rule scoping,
    and the parsed suppression comments.
    """

    def __init__(self, path: Path, source: str, module: str) -> None:
        self.path = path
        self.source = source
        self.module = module
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.suppressions = _parse_suppressions(source)
        self._by_line: dict[int, Suppression] = {}
        for sup in self.suppressions:
            self._by_line[sup.line] = sup

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def suppression_for(self, rule: str, line: int) -> Suppression | None:
        """The suppression covering *rule* at *line*, if any.

        Same-line comments win; a standalone comment on the line above
        also covers *line* (so long statements can carry the comment
        without blowing the line length).
        """
        sup = self._by_line.get(line)
        if sup is not None and sup.covers(rule):
            return sup
        above = self._by_line.get(line - 1)
        if above is not None and above.standalone and above.covers(rule):
            return above
        return None

    def in_scope(self, scopes: tuple[str, ...]) -> bool:
        """Whether this file's module falls under any of *scopes*.

        Scopes are dotted module prefixes matched at package boundaries:
        ``repro.core`` covers ``repro.core`` and ``repro.core.slrh`` but
        not ``repro.coreutils``.  An empty scope tuple means "everywhere".
        """
        if not scopes:
            return True
        for scope in scopes:
            if self.module == scope or self.module.startswith(scope + "."):
                return True
        return False


@dataclass
class ParentMap:
    """Child → parent links for one AST (built lazily, cached per file)."""

    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)

    @classmethod
    def of(cls, tree: ast.AST) -> "ParentMap":
        pm = cls()
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                pm.parents[child] = parent
        return pm

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self.parents.get(node)
        while cur is not None:
            yield cur
            cur = self.parents.get(cur)


def module_path_for(path: Path) -> str:
    """Dotted module path for *path*, anchored at the last ``repro``
    directory component (``.../src/repro/core/slrh.py`` →
    ``repro.core.slrh``).  Files outside a ``repro`` tree lint under
    their bare stem, which only unscoped rules match."""
    parts = list(path.with_suffix("").parts)
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            mod = parts[i:]
            if mod[-1] == "__init__":
                mod = mod[:-1]
            return ".".join(mod)
    return path.stem
