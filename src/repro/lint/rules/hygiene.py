"""API-hygiene rules: small, high-signal checks over all of ``src/repro``.

* ``no-mutable-default`` — a ``def f(x=[])`` default is shared across
  calls; with the planning cache and the service's long-lived workers,
  such sharing is a cross-request state leak, not a style nit.
* ``no-bare-except`` — ``except:`` swallows ``KeyboardInterrupt`` and
  ``SystemExit``, which the daemon relies on for drain/shutdown.
* ``no-assert`` — ``assert`` disappears under ``python -O``; runtime
  validation must raise explicitly so a production invocation fails the
  same way the test suite does.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.model import FileContext, Finding
from repro.lint.registry import register

HYGIENE_SCOPES = ("repro",)

#: Expression shapes that create a fresh mutable object per evaluation —
#: which, as a default, means one shared instance for every call.
_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)

#: Call-by-name constructors that are mutable for sure.
_MUTABLE_CTORS = frozenset({"list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter", "OrderedDict"})


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CTORS
    return False


@register(
    "no-mutable-default",
    "api-hygiene",
    "no mutable default arguments (shared across calls; use None + "
    "an in-body default)",
    scopes=HYGIENE_SCOPES,
)
def no_mutable_default(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        args = node.args
        for default in list(args.defaults) + [d for d in args.kw_defaults if d is not None]:
            if _is_mutable_default(default):
                name = getattr(node, "name", "<lambda>")
                yield no_mutable_default.finding(
                    ctx,
                    default,
                    f"mutable default argument in {name!r} is evaluated once "
                    "and shared across calls; default to None and build the "
                    "object in the body",
                )


@register(
    "no-bare-except",
    "api-hygiene",
    "no bare 'except:' — it catches KeyboardInterrupt/SystemExit and "
    "breaks daemon shutdown; name the exception (Exception at minimum)",
    scopes=HYGIENE_SCOPES,
)
def no_bare_except(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield no_bare_except.finding(
                ctx,
                node,
                "bare 'except:' also catches KeyboardInterrupt and "
                "SystemExit; catch Exception (or something narrower)",
            )


@register(
    "no-assert",
    "api-hygiene",
    "no 'assert' for runtime validation in library code — it vanishes "
    "under python -O; raise explicitly",
    scopes=HYGIENE_SCOPES,
)
def no_assert(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assert):
            yield no_assert.finding(
                ctx,
                node,
                "'assert' is stripped under python -O, so this check "
                "silently disappears in optimised runs; raise "
                "ValueError/RuntimeError explicitly",
            )
