"""Lock-discipline rule: a lightweight static race detector for the
service's dispatcher / handler / worker threads.

Shared mutable state in :mod:`repro.service` is *declared* with a
trailing annotation on its ``__init__`` assignment::

    self._queue: deque[Job] = deque()  # guarded-by: _lock

From then on, every ``self._queue`` access anywhere in the class must be
provably under that lock, in one of three lexically checkable ways:

* inside ``with self._lock:`` (any enclosing ``with`` whose context
  expression is the declared lock);
* in a method whose name ends in ``_locked`` — the repo's existing
  convention for "caller holds the lock" helpers;
* in a method annotated ``# requires-lock: _lock`` on (or directly
  above) its ``def`` line — same contract, without the rename.

``__init__`` itself is exempt (no other thread can hold a reference yet).
Anything else is a finding: either a real race, or a deliberate unlocked
access that must carry a justified suppression.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.model import FileContext, Finding, ParentMap
from repro.lint.registry import register

LOCK_SCOPES = ("repro.service",)

_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*(?:self\.)?([A-Za-z_][A-Za-z0-9_]*)")
_REQUIRES_LOCK_RE = re.compile(r"#\s*requires-lock:\s*(?:self\.)?([A-Za-z_][A-Za-z0-9_]*)")


def _comment_annotation(
    ctx: FileContext, lineno: int, pattern: re.Pattern
) -> str | None:
    """Match *pattern* on the given line or a standalone comment above it."""
    m = pattern.search(ctx.line_text(lineno))
    if m:
        return m.group(1)
    above = ctx.line_text(lineno - 1).strip()
    if above.startswith("#"):
        m = pattern.search(above)
        if m:
            return m.group(1)
    return None


def _self_attr(node: ast.AST) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _guarded_attrs(ctx: FileContext, cls: ast.ClassDef) -> dict[str, str]:
    """attr name → lock attr name, from ``# guarded-by:`` annotations on
    ``self.X = ...`` / ``self.X: T = ...`` assignments in ``__init__``."""
    guarded: dict[str, str] = {}
    for item in cls.body:
        if not (isinstance(item, ast.FunctionDef) and item.name == "__init__"):
            continue
        for node in ast.walk(item):
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            else:
                continue
            for target in targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                lock = _comment_annotation(ctx, node.lineno, _GUARDED_BY_RE)
                if lock is not None:
                    guarded[attr] = lock
    return guarded


def _under_lock(
    node: ast.AST, lock: str, parents: ParentMap
) -> bool:
    """Whether *node* sits inside ``with self.<lock>:`` within its own
    function (closures escape the lock and get no credit)."""
    want = f"self.{lock}"
    for parent in parents.ancestors(node):
        if isinstance(parent, (ast.With, ast.AsyncWith)):
            for item in parent.items:
                try:
                    if ast.unparse(item.context_expr) == want:
                        return True
                except Exception:  # pragma: no cover - exotic context expr
                    continue
        elif isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A closure/lambda may run after the with-block exits.
            return False
    return False


def _method_holds_lock(
    func: ast.FunctionDef | ast.AsyncFunctionDef | None,
    lock: str,
    ctx: FileContext,
) -> bool:
    if func is None:
        return False
    if func.name == "__init__":
        return True
    if func.name.endswith("_locked"):
        return True
    return _comment_annotation(ctx, func.lineno, _REQUIRES_LOCK_RE) == lock


@register(
    "lock-guarded-attr",
    "lock-discipline",
    "attributes declared '# guarded-by: <lock>' are only touched under "
    "'with self.<lock>:' (or in a *_locked / '# requires-lock' method)",
    scopes=LOCK_SCOPES,
)
def lock_guarded_attr(ctx: FileContext) -> Iterator[Finding]:
    parents = ParentMap.of(ctx.tree)
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        guarded = _guarded_attrs(ctx, cls)
        if not guarded:
            continue
        for node in ast.walk(cls):
            attr = _self_attr(node)
            if attr is None or attr not in guarded:
                continue
            lock = guarded[attr]
            func: ast.FunctionDef | ast.AsyncFunctionDef | None = None
            for anc in parents.ancestors(node):
                if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    func = anc
                    break
            if _method_holds_lock(func, lock, ctx):
                continue
            if _under_lock(node, lock, parents):
                continue
            where = func.name if func is not None else cls.name
            yield lock_guarded_attr.finding(
                ctx,
                node,
                f"self.{attr} is declared guarded-by {lock} but is touched "
                f"in {where!r} outside 'with self.{lock}:'; lock it, mark "
                f"the method '# requires-lock: {lock}', or suppress with a "
                "justification",
            )
