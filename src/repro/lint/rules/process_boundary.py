"""Process-boundary family: what may cross the fork line.

``ShardProcess`` workers talk to the parent over a command pipe and a
result queue; anything written to either must survive pickling in one
process and unpickling in another.  Locks, threads, sockets, generators,
lambdas and open files do not — they either raise at pickle time (best
case) or silently detach from the state they guarded (worst case).  The
"picklable whitelist" is therefore defined by its complement: a payload
is fine unless the analyzer can *prove* it is one of the known-bad kinds
(:data:`_BAD_KINDS`), directly or one call away through a parameter that
flows into a boundary send.

The second rule covers fork hygiene: CPython's ``fork`` clones only the
calling thread, so a thread started *before* the fork leaves the child
with locks whose owners no longer exist.  Within any function that forks
(starts a ``Process`` or constructs a ``ShardProcess``, directly or
through a resolved callee), every thread ``.start()`` must come lexically
after the fork point — the ``ShardDispatcher.start`` ordering ("fork (if
any) before traffic") becomes a checked invariant instead of a comment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import FunctionInfo, Project
from repro.lint.model import Finding
from repro.lint.registry import register

_SCOPES = ("repro.service", "repro.util")

#: Kind tags that must never cross a pipe/queue to another process.
_BAD_KINDS = {
    "lock": "a lock",
    "condition": "a condition variable",
    "thread": "a thread",
    "socket": "a socket",
    "generator": "a generator",
    "lambda": "a lambda",
    "file": "an open file",
    "process": "a process handle",
}

#: Kinds additionally banned in *runtime* sends (pickled through the
#: channel) but fine as fork-time ``Process(args=...)`` arguments, where
#: multiprocessing hands them to the child by inheritance.
_RUNTIME_ONLY_BAD = {
    "connection": "a pipe connection",
    "queue": "a multiprocessing queue",
    "queue-bounded": "a bounded queue",
    "event": "an event",
}


def _bad_kind(kinds: tuple[str, ...], fork_time: bool) -> str | None:
    for kind in kinds:
        if kind in _BAD_KINDS:
            return _BAD_KINDS[kind]
        if not fork_time and kind in _RUNTIME_ONLY_BAD:
            return _RUNTIME_ONLY_BAD[kind]
    return None


def _payload_parts(expr: ast.expr) -> list[ast.expr]:
    """The expressions actually crossing: tuple/list/dict payloads are
    checked element-wise, everything else as one value."""
    if isinstance(expr, (ast.Tuple, ast.List)):
        out: list[ast.expr] = []
        for elt in expr.elts:
            if isinstance(elt, ast.Starred):
                out.append(elt.value)
            else:
                out.extend(_payload_parts(elt))
        return out
    if isinstance(expr, ast.Dict):
        return [v for v in expr.values if v is not None]
    return [expr]


def _boundary_sends(
    project: Project, func: FunctionInfo
) -> Iterator[tuple[ast.Call, ast.expr, bool]]:
    """``(call, payload, fork_time)`` for every boundary crossing in
    *func*: ``<connection>.send(x)``, ``<queue>.put(x)``, and the
    ``args=(...)`` of a ``Process``/``ShardProcess`` construction."""
    env = project.function_env(func)
    cls = (
        project.classes.get(func.class_qname)
        if func.class_qname is not None
        else None
    )
    for node in ast.walk(func.node):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Attribute) and node.args:
            kinds = project._expr_kinds(
                node.func.value, func.module, env, cls
            )
            if node.func.attr in ("send", "put", "put_nowait") and any(
                k in ("connection", "queue", "queue-bounded") for k in kinds
            ):
                yield node, node.args[0], False
                continue
        ctor_kinds = project._expr_kinds(node, func.module, env, cls)
        is_shardprocess = any(
            k.startswith("class:") and k.endswith(".ShardProcess")
            for k in ctor_kinds
        )
        if "process" in ctor_kinds or is_shardprocess:
            for kw in node.keywords:
                if kw.arg == "args":
                    yield node, kw.value, True


def _boundary_params(
    project: Project,
    scoped: list[FunctionInfo],
) -> dict[str, dict[str, list[tuple[str, int]]]]:
    """``func qname -> {param name -> witness chain to the send}`` for
    parameters that flow into a boundary send, one propagation fixpoint
    over resolved call sites (``f(x)`` where ``f`` sends its param)."""
    flows: dict[str, dict[str, list[tuple[str, int]]]] = {}
    for func in scoped:
        param_names = {
            a.arg
            for a in (
                func.node.args.posonlyargs
                + func.node.args.args
                + func.node.args.kwonlyargs
            )
        }
        for call, payload, _fork in _boundary_sends(project, func):
            for part in _payload_parts(payload):
                if isinstance(part, ast.Name) and part.id in param_names:
                    flows.setdefault(func.qname, {}).setdefault(
                        part.id, [(func.qname, call.lineno)]
                    )
    for _ in range(4):  # chains deeper than this don't exist in practice
        changed = False
        for func in scoped:
            param_names = [
                a.arg
                for a in (
                    func.node.args.posonlyargs + func.node.args.args
                )
                if a.arg not in ("self", "cls")
            ]
            for site in project.callsites(func):
                if site.duck:
                    continue
                for target in site.targets:
                    sink = flows.get(target.qname)
                    if not sink:
                        continue
                    t_params = [
                        a.arg
                        for a in (
                            target.node.args.posonlyargs
                            + target.node.args.args
                        )
                        if a.arg not in ("self", "cls")
                    ]
                    for i, arg in enumerate(site.node.args):
                        if i >= len(t_params):
                            break
                        chain = sink.get(t_params[i])
                        if chain is None:
                            continue
                        if (
                            isinstance(arg, ast.Name)
                            and arg.id in param_names
                        ):
                            mine = flows.setdefault(func.qname, {})
                            if arg.id not in mine:
                                mine[arg.id] = [
                                    (func.qname, site.node.lineno)
                                ] + chain
                                changed = True
        if not changed:
            break
    return flows


@register(
    "pipe-unpicklable",
    "process-boundary",
    "payloads crossing the ShardProcess command pipe / result queue must "
    "be picklable by construction — no locks, threads, sockets, "
    "generators, lambdas or open files across a fork boundary",
    scopes=_SCOPES,
    program=True,
)
def pipe_unpicklable(project: Project) -> Iterator[Finding]:
    scoped = project.functions_in_scope(_SCOPES)
    flows = _boundary_params(project, scoped)
    for func in scoped:
        env = project.function_env(func)
        cls = (
            project.classes.get(func.class_qname)
            if func.class_qname is not None
            else None
        )
        # Direct sends.
        for call, payload, fork_time in _boundary_sends(project, func):
            for part in _payload_parts(payload):
                kinds = project._expr_kinds(part, func.module, env, cls)
                bad = _bad_kind(kinds, fork_time)
                if bad is not None:
                    where = (
                        "fork-time Process args" if fork_time
                        else "the process boundary"
                    )
                    yield Finding(
                        rule="pipe-unpicklable",
                        path=str(func.ctx.path),
                        line=part.lineno,
                        col=part.col_offset,
                        message=(
                            f"{func.short} sends {bad} "
                            f"({ast.unparse(part)}) across {where}"
                        ),
                    )
        # Indirect: an argument flowing into a callee's boundary send.
        for site in project.callsites(func):
            if site.duck:
                continue
            for target in site.targets:
                sink = flows.get(target.qname)
                if not sink:
                    continue
                t_params = [
                    a.arg
                    for a in (
                        target.node.args.posonlyargs + target.node.args.args
                    )
                    if a.arg not in ("self", "cls")
                ]
                for i, arg in enumerate(site.node.args):
                    if i >= len(t_params):
                        break
                    chain = sink.get(t_params[i])
                    if chain is None:
                        continue
                    kinds = project._expr_kinds(arg, func.module, env, cls)
                    bad = _bad_kind(kinds, fork_time=False)
                    if bad is None:
                        continue
                    witness = " -> ".join(
                        f"{q}:{line}" for q, line in chain
                    )
                    yield Finding(
                        rule="pipe-unpicklable",
                        path=str(func.ctx.path),
                        line=arg.lineno,
                        col=arg.col_offset,
                        message=(
                            f"{func.short} passes {bad} "
                            f"({ast.unparse(arg)}) to {target.short}, "
                            f"which sends it across the process boundary "
                            f"[{witness}]"
                        ),
                    )


@register(
    "thread-before-fork",
    "process-boundary",
    "no thread may be started before a fork on the same setup path — the "
    "child inherits locked locks whose owner threads do not exist",
    scopes=_SCOPES,
    program=True,
)
def thread_before_fork(project: Project) -> Iterator[Finding]:
    # A function "forks" at the line it starts a Process / constructs a
    # ShardProcess, or calls a resolved callee that does.
    fork_line: dict[str, int] = {}
    scoped = project.functions_in_scope(_SCOPES)
    for func in scoped:
        env = project.function_env(func)
        cls = (
            project.classes.get(func.class_qname)
            if func.class_qname is not None
            else None
        )
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "start"
            ):
                kinds = project._expr_kinds(
                    node.func.value, func.module, env, cls
                )
                if "process" in kinds:
                    fork_line[func.qname] = min(
                        fork_line.get(func.qname, node.lineno), node.lineno
                    )
            ctor_kinds = project._expr_kinds(node, func.module, env, cls)
            if any(
                k.startswith("class:") and k.endswith(".ShardProcess")
                for k in ctor_kinds
            ):
                fork_line[func.qname] = min(
                    fork_line.get(func.qname, node.lineno), node.lineno
                )
    for _ in range(4):  # propagate through resolved call chains
        changed = False
        for func in scoped:
            for site in project.callsites(func):
                if site.duck:
                    continue
                if any(t.qname in fork_line for t in site.targets):
                    line = site.node.lineno
                    if line < fork_line.get(func.qname, 10**9):
                        fork_line[func.qname] = line
                        changed = True
        if not changed:
            break
    for func in scoped:
        fork_at = fork_line.get(func.qname)
        if fork_at is None:
            continue
        env = project.function_env(func)
        cls = (
            project.classes.get(func.class_qname)
            if func.class_qname is not None
            else None
        )
        for node in ast.walk(func.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "start"
                and node.lineno < fork_at
            ):
                continue
            kinds = project._expr_kinds(node.func.value, func.module, env, cls)
            if "thread" in kinds:
                yield Finding(
                    rule="thread-before-fork",
                    path=str(func.ctx.path),
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"{func.short} starts a thread "
                        f"({ast.unparse(node.func.value)}) at line "
                        f"{node.lineno} but forks at line {fork_at}; "
                        f"start threads after the fork"
                    ),
                )
