"""Import-whitelist rules: the runtime depends on nothing the container
doesn't already have.

Two tiers:

* ``import-whitelist`` (all of ``src/repro``) — imports must be stdlib,
  first-party (``repro.*``), or one of the three dependencies declared in
  ``pyproject.toml`` (numpy, scipy, networkx).  Catches a stray
  ``import pandas`` before it breaks a deploy.
* ``stdlib-only-layer`` (``repro.obs``, ``repro.service``, ``repro.perf``,
  ``repro.lint``) — **no third-party imports at all**: the daemon and its
  observability surface deploy as "copy the tree, run python -m
  repro.service"; first-party imports are fine (scenario deserialisation
  pulls numpy indirectly, but the layer itself must stay importable
  without it for tooling like this linter).
"""

from __future__ import annotations

import ast
import sys
from typing import Iterator

from repro.lint.model import FileContext, Finding
from repro.lint.registry import register

#: Third-party packages declared in pyproject.toml [project.dependencies].
DECLARED_DEPS = frozenset({"numpy", "scipy", "networkx"})

#: The layers that must import nothing outside the stdlib + repro.
STDLIB_ONLY_SCOPES = (
    "repro.obs",
    "repro.service",
    "repro.perf",
    "repro.lint",
    "repro.session",
)

_STDLIB = frozenset(sys.stdlib_module_names)


def _imported_roots(node: ast.AST) -> list[tuple[str, ast.AST]]:
    """Top-level package names imported by *node* (empty for relative)."""
    if isinstance(node, ast.Import):
        return [(alias.name.split(".")[0], node) for alias in node.names]
    if isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
        return [(node.module.split(".")[0], node)]
    return []


def _walk_imports(tree: ast.Module) -> Iterator[tuple[str, ast.AST]]:
    for node in ast.walk(tree):
        yield from _imported_roots(node)


@register(
    "import-whitelist",
    "stdlib-only",
    "src/repro imports only the stdlib, repro itself, and the declared "
    "dependencies (numpy, scipy, networkx)",
    scopes=("repro",),
)
def import_whitelist(ctx: FileContext) -> Iterator[Finding]:
    for root, node in _walk_imports(ctx.tree):
        if root in _STDLIB or root == "repro" or root in DECLARED_DEPS:
            continue
        yield import_whitelist.finding(
            ctx,
            node,
            f"import of {root!r} is neither stdlib, first-party, nor a "
            "declared dependency (numpy/scipy/networkx); the runtime must "
            "not grow undeclared requirements",
        )


@register(
    "stdlib-only-layer",
    "stdlib-only",
    "the service/obs/perf/lint layer imports only the stdlib and repro "
    "(zero-dependency deploy story)",
    scopes=STDLIB_ONLY_SCOPES,
)
def stdlib_only_layer(ctx: FileContext) -> Iterator[Finding]:
    for root, node in _walk_imports(ctx.tree):
        if root in _STDLIB or root == "repro":
            continue
        yield stdlib_only_layer.finding(
            ctx,
            node,
            f"import of {root!r} in the stdlib-only layer ({ctx.module}); "
            "the service and its tooling deploy with no third-party "
            "packages at all",
        )
