"""Guard-verification family: prove the ``_locked`` convention.

The per-file lock-discipline rule *trusts* a function's contract — a
``*_locked`` name or a ``# requires-lock:`` comment means "my caller
holds the lock", and any guarded attribute it touches passes.  This rule
closes the loop over the call graph: every **resolved** call site of a
contract function must itself provably hold the declared lock (from an
enclosing ``with``, an ``.acquire()`` interval, or the caller's own
verified contract).  A call path that reaches guarded state without the
lock is a race the suffix convention would have hidden.

Duck-resolved call sites (receiver type unknown, matched by method name
alone) are skipped: an over-approximated receiver would make this rule
scream about calls that never happen.  Under-approximating keeps every
finding a real, nameable call edge — caller, line, callee, lock.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.callgraph import FunctionInfo, Project, lock_label
from repro.lint.model import Finding
from repro.lint.registry import register

_SCOPES = ("repro.service", "repro.session", "repro.util")


def _protected_summary(project: Project, target: FunctionInfo) -> str:
    """What the callee's lock actually protects, for the finding text."""
    guarded = sorted({attr for attr, _, _ in
                      project.guarded_attr_accesses(target)})
    if guarded:
        return (
            "; it touches guarded attribute(s) "
            + ", ".join(f"self.{a}" for a in guarded)
        )
    return ""


@register(
    "guard-verified-call",
    "guard-verification",
    "a *_locked / '# requires-lock:' function may only be called with its "
    "declared lock provably held (verified over the call graph, not the "
    "naming convention)",
    scopes=_SCOPES,
    program=True,
)
def guard_verified_call(project: Project) -> Iterator[Finding]:
    for func in project.functions_in_scope(_SCOPES):
        for site in project.callsites(func):
            if site.duck:
                continue
            held = None  # computed lazily, only when a target has a contract
            for target in site.targets:
                required = project.entry_locks(target)
                if not required or target.name == "__init__":
                    continue
                if held is None:
                    held = project.held_locks(site.node, func)
                missing = sorted(required - held)
                if not missing:
                    continue
                locks = ", ".join(lock_label(lock) for lock in missing)
                how = (
                    "the _locked suffix"
                    if target.name.endswith("_locked")
                    else "# requires-lock"
                )
                yield Finding(
                    rule="guard-verified-call",
                    path=str(func.ctx.path),
                    line=site.node.lineno,
                    col=site.node.col_offset,
                    message=(
                        f"{func.short} calls {target.short} without holding "
                        f"{locks} (declared via {how})"
                        f"{_protected_summary(project, target)}"
                    ),
                )
