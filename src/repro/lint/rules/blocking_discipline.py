"""Blocking-discipline family: no unbounded waits on IPC primitives.

A dispatcher or liveness thread blocked forever in ``Queue.get()`` or
``Connection.recv()`` cannot notice a dead peer, honor a drain request,
or let the process exit — the PR 8 liveness design (heartbeats, 503 on a
dead shard) only works because every wait has a bound.  This rule makes
that a checked invariant: a blocking ``get``/``put``/``recv`` on a
receiver the call graph can type as a queue or pipe connection must
carry a timeout, follow a ``poll()`` on the same receiver, or carry a
justified suppression (the one legitimate case: a child process whose
*only* job is to wait for the next command).

``put`` is only flagged on queues constructed with a nonzero
``maxsize`` — an unbounded queue's ``put`` never blocks, so demanding a
timeout there would be noise.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import Project
from repro.lint.model import Finding
from repro.lint.registry import register

_SCOPES = ("repro.service", "repro.util")


def _has_timeout(call: ast.Call) -> bool:
    """Queue.get/put signature: ``(block=True, timeout=None)`` after the
    optional item — any explicit timeout, or ``block=False``, bounds it."""
    positional = [a for a in call.args]
    if positional:
        first = positional[0]
        if isinstance(first, ast.Constant) and first.value is False:
            return True  # non-blocking
        if len(positional) >= 2:
            return True  # (block, timeout)
    for kw in call.keywords:
        if kw.arg == "timeout":
            return True
        if kw.arg == "block":
            value = kw.value
            if isinstance(value, ast.Constant) and value.value is False:
                return True
    return False


def _put_has_timeout(call: ast.Call) -> bool:
    """``put(item, block=True, timeout=None)`` — same, shifted by one."""
    positional = list(call.args)
    if len(positional) >= 2:
        second = positional[1]
        if isinstance(second, ast.Constant) and second.value is False:
            return True
        if len(positional) >= 3:
            return True
    for kw in call.keywords:
        if kw.arg == "timeout":
            return True
        if kw.arg == "block":
            value = kw.value
            if isinstance(value, ast.Constant) and value.value is False:
                return True
    return False


@register(
    "blocking-call-timeout",
    "blocking-discipline",
    "Queue.get / bounded Queue.put / Connection.recv in service and util "
    "threads must carry a timeout (or follow a poll() on the same "
    "receiver) so liveness checks and drains can ever run",
    scopes=_SCOPES,
    program=True,
)
def blocking_call_timeout(project: Project) -> Iterator[Finding]:
    for func in project.functions_in_scope(_SCOPES):
        env = project.function_env(func)
        cls = (
            project.classes.get(func.class_qname)
            if func.class_qname is not None
            else None
        )
        polled: set[str] = set()  # receivers poll()ed earlier (by line)
        calls: list[ast.Call] = [
            n for n in ast.walk(func.node)
            if isinstance(n, ast.Call) and isinstance(n.func, ast.Attribute)
        ]
        calls.sort(key=lambda n: (n.lineno, n.col_offset))
        for node in calls:
            attr = node.func.attr  # type: ignore[union-attr]
            receiver = node.func.value  # type: ignore[union-attr]
            if attr == "poll":
                polled.add(ast.unparse(receiver))
                continue
            if attr not in ("get", "put", "recv", "recv_bytes"):
                continue
            kinds = project._expr_kinds(receiver, func.module, env, cls)
            if attr == "get" and any(
                k in ("queue", "queue-bounded") for k in kinds
            ):
                if not _has_timeout(node):
                    yield Finding(
                        rule="blocking-call-timeout",
                        path=str(func.ctx.path),
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"{func.short}: unbounded "
                            f"{ast.unparse(receiver)}.get() — pass "
                            f"timeout= so drain/liveness can interrupt it"
                        ),
                    )
            elif attr == "put" and "queue-bounded" in kinds:
                if not _put_has_timeout(node):
                    yield Finding(
                        rule="blocking-call-timeout",
                        path=str(func.ctx.path),
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"{func.short}: blocking put() on bounded "
                            f"{ast.unparse(receiver)} without timeout="
                        ),
                    )
            elif attr in ("recv", "recv_bytes") and "connection" in kinds:
                if ast.unparse(receiver) in polled:
                    continue
                if node.keywords or node.args:
                    continue  # not the bare blocking form
                yield Finding(
                    rule="blocking-call-timeout",
                    path=str(func.ctx.path),
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"{func.short}: {ast.unparse(receiver)}.recv() "
                        f"blocks forever — poll() with a timeout first, "
                        f"or justify the suppression"
                    ),
                )
