"""Built-in rule families — importing this package registers every rule."""

from repro.lint.rules import (  # noqa: F401  (registration side effects)
    determinism,
    hygiene,
    lock_discipline,
    obs_discipline,
    stdlib_only,
)
