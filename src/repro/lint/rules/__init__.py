"""Built-in rule families — importing this package registers every rule."""

from repro.lint.rules import (  # noqa: F401  (registration side effects)
    blocking_discipline,
    determinism,
    guard_verification,
    hygiene,
    lock_discipline,
    lock_order,
    obs_discipline,
    process_boundary,
    stdlib_only,
)
