"""Obs-discipline rules: observability in the mapping hot path is free
when off — and stays free only if every call site keeps its guard.

PR 3's contract: with nothing configured, instrumentation degrades to a
single flag check (<2% overhead, gated by the A/B benchmark in
``benchmarks/check_regression.py``).  The guards that make that true are
conventions, enforced here for ``repro.core`` and ``repro.sim``:

* an :class:`~repro.obs.log.EventLogger` call (``X.event`` / ``X.error``
  where ``X`` was bound from :func:`repro.obs.log.get_logger`) must sit
  behind an ``enabled()`` / ``.enabled`` check — the emitter re-checks
  internally, but the kwargs dict it is handed is built *before* the
  check, which is exactly the cost the budget forbids;
* a ``.span(...)`` construction must be conditioned on ``tracer.enabled``
  (the ``... if tracer.enabled else NULL_SPAN`` idiom or an enclosing
  ``if``) — span objects and their kwargs must not be built on the
  disabled path;
* a decision-ledger call (``<x>ledger.reject`` / ``<x>ledger.note_tick``)
  must sit behind ``<receiver> is not None`` (the ledger has no null
  object by design: ``None`` *is* the disabled state).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import (
    collect_imports,
    dotted_name,
    enabled_proxies,
    guard_tests,
    test_checks_enabled,
    test_checks_not_none,
)
from repro.lint.model import FileContext, Finding, ParentMap
from repro.lint.registry import register

#: The packages whose hot paths carry the <2% disabled-obs budget.
OBS_SCOPES = ("repro.core", "repro.sim")


def _event_logger_names(tree: ast.Module) -> frozenset[str]:
    """Module-level names bound from ``get_logger(...)``."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if (
                isinstance(target, ast.Name)
                and isinstance(node.value, ast.Call)
                and dotted_name(node.value.func) in ("get_logger", "log.get_logger")
            ):
                names.add(target.id)
    return frozenset(names)


def _is_guarded_enabled(node: ast.AST, ctx_cache: dict, ctx: FileContext) -> bool:
    parents: ParentMap = ctx_cache.setdefault("parents", ParentMap.of(ctx.tree))
    proxies: frozenset[str] = ctx_cache.setdefault(
        "proxies", enabled_proxies(ctx.tree)
    )
    return any(
        test_checks_enabled(test, proxies) for test in guard_tests(node, parents)
    )


def _is_guarded_not_none(
    node: ast.AST, receiver_text: str, ctx_cache: dict, ctx: FileContext
) -> bool:
    parents: ParentMap = ctx_cache.setdefault("parents", ParentMap.of(ctx.tree))
    return any(
        test_checks_not_none(test, receiver_text)
        for test in guard_tests(node, parents)
    )


@register(
    "obs-guarded-log",
    "obs-discipline",
    "EventLogger.event/.error call sites in core/sim sit behind an "
    "enabled() guard (no kwargs built on the disabled path)",
    scopes=OBS_SCOPES,
)
def obs_guarded_log(ctx: FileContext) -> Iterator[Finding]:
    loggers = _event_logger_names(ctx.tree)
    if not loggers:
        return
    cache: dict = {}
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr not in ("event", "error"):
            continue
        base = node.func.value
        if not (isinstance(base, ast.Name) and base.id in loggers):
            continue
        if _is_guarded_enabled(node, cache, ctx):
            continue
        yield obs_guarded_log.finding(
            ctx,
            node,
            f"unguarded {base.id}.{node.func.attr}(...) builds its fields "
            "dict even when logging is off; wrap in "
            "'if <obs.log.enabled()>:' to keep the disabled path free",
        )


@register(
    "obs-guarded-span",
    "obs-discipline",
    "tracer.span(...) construction in core/sim is conditioned on "
    "tracer.enabled (the '... if tracer.enabled else NULL_SPAN' idiom)",
    scopes=OBS_SCOPES,
)
def obs_guarded_span(ctx: FileContext) -> Iterator[Finding]:
    cache: dict = {}
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr not in ("span", "instant"):
            continue
        receiver = dotted_name(node.func.value)
        if receiver is None:
            continue
        # Only tracer-shaped receivers: 'tracer', 'self.tracer',
        # 'schedule.tracer' ... — anything whose last component mentions
        # 'tracer'.  (repro.obs itself is out of scope here.)
        if "tracer" not in receiver.split(".")[-1].lower():
            continue
        if _is_guarded_enabled(node, cache, ctx):
            continue
        yield obs_guarded_span.finding(
            ctx,
            node,
            f"unguarded {receiver}.{node.func.attr}(...) allocates span "
            "kwargs even when tracing is off; use "
            f"'{receiver}.{node.func.attr}(...) if {receiver}.enabled "
            "else NULL_SPAN'",
        )


@register(
    "obs-guarded-ledger",
    "obs-discipline",
    "decision-ledger calls in core/sim sit behind '<ledger> is not None' "
    "(None is the disabled state; there is no null ledger object)",
    scopes=OBS_SCOPES,
)
def obs_guarded_ledger(ctx: FileContext) -> Iterator[Finding]:
    origins = collect_imports(ctx.tree)
    cache: dict = {}
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr not in ("reject", "note_tick"):
            continue
        receiver = dotted_name(node.func.value)
        if receiver is None:
            continue
        # Decision-ledger receivers end in 'ledger' ('ledger',
        # 'trace.ledger', 'self.ledger'); the energy ledger is accessed
        # through differently named attributes and has no reject().
        if not receiver.split(".")[-1].lower().endswith("ledger"):
            continue
        if origins.get(receiver.split(".")[0], "").startswith("repro.grid"):
            continue
        if _is_guarded_not_none(node, receiver, cache, ctx):
            continue
        yield obs_guarded_ledger.finding(
            ctx,
            node,
            f"unguarded {receiver}.{node.func.attr}(...); the disabled "
            f"ledger is None — guard with 'if {receiver} is not None:'",
        )
