"""Lock-order family: whole-program deadlock detection.

Builds a lock-acquisition-order graph over the project: an edge
``A -> B`` means some thread can *hold* lock ``A`` while *blockingly
acquiring* lock ``B`` — from a nested ``with`` context, a blocking
``.acquire()`` call, a call into a function that (transitively) takes
``B``, or an explicit ``# acquires: <lock>`` annotation.  Any cycle in
that graph is the classic hold-and-wait condition: two threads entering
the cycle from different points can each hold the lock the other wants.

Non-blocking acquisitions (``acquire(blocking=False)``) create no edge —
a thread that cannot wait cannot deadlock — which is exactly why
``SessionManager._evict_idle_locked`` may probe session locks while
holding the manager lock.  ``__init__`` bodies also create no edges: the
object under construction is not yet shared, so its locks cannot
participate in a hold-and-wait (the guard-verification family is what
credits ``__init__`` for unguarded attribute writes).

Each cycle is reported once, anchored at its first witness frame, with
the full witness path (function and line for every hop) in the message.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import (
    FunctionInfo,
    LockId,
    Project,
    _is_blocking_acquire,
    lock_label,
)
from repro.lint.model import Finding
from repro.lint.registry import register

_SCOPES = ("repro.service", "repro.session", "repro.util")

#: edge (A, B) -> witness chain [(function qname, line), ...]
_EdgeMap = dict[tuple[LockId, LockId], list[tuple[str, int]]]


def _add_edge(
    edges: _EdgeMap,
    held: frozenset[LockId] | set[LockId],
    lock: LockId,
    witness: list[tuple[str, int]],
) -> None:
    for h in held:
        if h == lock:
            continue
        key = (h, lock)
        if key not in edges or len(witness) < len(edges[key]):
            edges[key] = list(witness)


def _function_edges(
    project: Project, func: FunctionInfo, edges: _EdgeMap
) -> None:
    exclude: frozenset[LockId] = (
        project.entry_locks(func) if func.name == "__init__" else frozenset()
    )

    def held_at(node: ast.AST) -> frozenset[LockId]:
        return project.held_locks(node, func) - exclude

    for node in ast.walk(func.node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            held = set(held_at(node))
            for item in node.items:
                lock = project.resolve_lock_expr(item.context_expr, func)
                if lock is None:
                    continue
                _add_edge(
                    edges, held, lock, [(func.qname, node.lineno)]
                )
                held.add(lock)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
            and _is_blocking_acquire(node)
        ):
            lock = project.resolve_lock_expr(node.func.value, func)
            if lock is not None:
                _add_edge(
                    edges,
                    held_at(node),
                    lock,
                    [(func.qname, node.lineno)],
                )
    # Annotated acquisitions happen "somewhere inside": credit them
    # against the entry contract's held set.
    notes = [
        lock for lock, line in project.direct_acquisitions(func)
        if line == func.node.lineno
    ]
    if notes:
        entry_held = project.entry_locks(func) - exclude
        for lock in notes:
            _add_edge(
                edges, entry_held, lock, [(func.qname, func.node.lineno)]
            )
    # Interprocedural: holding locks across a call that (transitively)
    # acquires more.
    for site in project.callsites(func):
        held = held_at(site.node)
        if not held:
            continue
        for target in site.targets:
            acquired = project.transitive_acquisitions(target)
            for lock, chain in sorted(acquired.items()):
                if lock in held:
                    continue
                _add_edge(
                    edges,
                    held,
                    lock,
                    [(func.qname, site.node.lineno)] + chain,
                )


def _cycles(
    graph: dict[LockId, dict[LockId, list[tuple[str, int]]]]
) -> list[list[LockId]]:
    """Elementary cycles, each enumerated once (rooted at its smallest
    node, successors visited in sorted order for determinism)."""
    out: list[list[LockId]] = []

    def dfs(
        start: LockId,
        cur: LockId,
        path: list[LockId],
        visiting: set[LockId],
    ) -> None:
        for nxt in sorted(graph.get(cur, {})):
            if nxt == start:
                out.append(path + [nxt])
            elif nxt > start and nxt not in visiting:
                visiting.add(nxt)
                dfs(start, nxt, path + [nxt], visiting)
                visiting.discard(nxt)

    for start in sorted(graph):
        dfs(start, start, [start], {start})
    return out


def _witness_text(chain: list[tuple[str, int]]) -> str:
    return " -> ".join(f"{qname}:{line}" for qname, line in chain)


@register(
    "lock-order-cycle",
    "lock-order",
    "the project-wide lock-acquisition graph must be acyclic "
    "(hold A then block on B, hold B then block on A = deadlock)",
    scopes=_SCOPES,
    program=True,
)
def lock_order_cycle(project: Project) -> Iterator[Finding]:
    edges: _EdgeMap = {}
    for func in project.functions_in_scope(_SCOPES):
        _function_edges(project, func, edges)
    graph: dict[LockId, dict[LockId, list[tuple[str, int]]]] = {}
    for (a, b), witness in edges.items():
        graph.setdefault(a, {})[b] = witness
    for cycle in _cycles(graph):
        hops = []
        for a, b in zip(cycle, cycle[1:]):
            witness = graph[a][b]
            hops.append(
                f"holds {lock_label(a)} then acquires {lock_label(b)} "
                f"[{_witness_text(witness)}]"
            )
        first_edge = graph[cycle[0]][cycle[1]]
        anchor_qname, anchor_line = first_edge[0]
        anchor = project.functions[anchor_qname]
        path_text = " -> ".join(lock_label(lock) for lock in cycle)
        yield Finding(
            rule="lock-order-cycle",
            path=str(anchor.ctx.path),
            line=anchor_line,
            col=0,
            message=(
                f"potential deadlock: lock-order cycle {path_text}; "
                + "; ".join(hops)
            ),
        )
