"""Determinism rules: the simulator's results are only reproducible because
nothing on a scoring or planning path reads the wall clock, global RNG
state, or unordered-set iteration order.

Scoped to the four packages whose code can reach a mapping decision:
``repro.core``, ``repro.sim``, ``repro.baselines``, ``repro.workload``.
Measurement clocks (``time.perf_counter`` / ``time.monotonic``) are
allowed — they time the heuristic, they never steer it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import collect_imports, resolved_call_target
from repro.lint.model import FileContext, Finding
from repro.lint.registry import register

#: Packages whose code can influence mapping bytes.
DETERMINISM_SCOPES = (
    "repro.core",
    "repro.sim",
    "repro.baselines",
    "repro.workload",
    "repro.session",
)

#: Wall-clock / entropy reads that poison byte-identical replay.
_BANNED_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``datetime``-class constructors whose "now" family is banned wherever the
#: class was imported from (``from datetime import datetime``).
_BANNED_TAILS = frozenset({"datetime.now", "datetime.utcnow", "datetime.today", "date.today"})

#: The one module allowed to touch RNG constructors directly.
_SEEDING_MODULE = "repro.util.seeding"


@register(
    "no-wall-clock",
    "determinism",
    "scoring/planning code must not read the wall clock or OS entropy "
    "(time.time, datetime.now, os.urandom, uuid1/4)",
    scopes=DETERMINISM_SCOPES,
)
def no_wall_clock(ctx: FileContext) -> Iterator[Finding]:
    origins = collect_imports(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        target = resolved_call_target(node, origins)
        if target is None:
            continue
        if target in _BANNED_CALLS or any(
            target == tail or target.endswith("." + tail) for tail in _BANNED_TAILS
        ):
            yield no_wall_clock.finding(
                ctx,
                node,
                f"call to {target}() is nondeterministic across runs; "
                "scheduling state must derive from the simulation clock",
            )


@register(
    "no-global-random",
    "determinism",
    "RNG flows only through repro.util.seeding — no stdlib random, no "
    "numpy global random state",
    scopes=DETERMINISM_SCOPES,
)
def no_global_random(ctx: FileContext) -> Iterator[Finding]:
    if ctx.module == _SEEDING_MODULE:
        return
    origins = collect_imports(ctx.tree)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield no_global_random.finding(
                        ctx,
                        node,
                        "import of stdlib 'random' — seed-threaded generators "
                        "come from repro.util.seeding",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                yield no_global_random.finding(
                    ctx,
                    node,
                    "import from stdlib 'random' — seed-threaded generators "
                    "come from repro.util.seeding",
                )
        elif isinstance(node, ast.Call):
            target = resolved_call_target(node, origins)
            if target is None:
                continue
            if target.startswith("random."):
                yield no_global_random.finding(
                    ctx,
                    node,
                    f"call to {target}() uses the global RNG; take a "
                    "Generator built by repro.util.seeding instead",
                )
            elif target.startswith("numpy.random."):
                tail = target.rsplit(".", 1)[-1]
                if tail not in ("Generator", "SeedSequence"):
                    yield no_global_random.finding(
                        ctx,
                        node,
                        f"call to {target}() touches numpy RNG construction/"
                        "global state; route through repro.util.seeding "
                        "(as_generator / spawn_generators)",
                    )


def _is_set_expr(node: ast.AST, origins: dict[str, str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset") and origins.get(node.func.id) is None:
            return True
    return False


#: Conversions whose result order is the set's iteration order.
_ORDER_SENSITIVE_WRAPPERS = frozenset({"list", "tuple", "iter", "enumerate"})


@register(
    "no-set-iteration",
    "determinism",
    "no direct iteration over set displays/constructors in ordering-"
    "sensitive code — wrap in sorted(...)",
    scopes=DETERMINISM_SCOPES,
)
def no_set_iteration(ctx: FileContext) -> Iterator[Finding]:
    origins = collect_imports(ctx.tree)
    for node in ast.walk(ctx.tree):
        iters: list[ast.AST] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if (
                node.func.id in _ORDER_SENSITIVE_WRAPPERS
                and origins.get(node.func.id) is None
                and node.args
            ):
                iters.append(node.args[0])
        for it in iters:
            if _is_set_expr(it, origins):
                yield no_set_iteration.finding(
                    ctx,
                    node,
                    "iteration over a bare set has arbitrary order under "
                    "PYTHONHASHSEED; use sorted(...) (or an order-insensitive "
                    "reduction)",
                )
