"""Command-line entry point: ``python -m repro.lint [paths] [options]``.

Exit status is 0 when no unsuppressed findings remain, 1 otherwise —
suitable for CI.  ``--format json`` emits the versioned ``repro.lint/1``
report consumed by the static-analysis CI job.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint import (
    all_rules,
    changed_files,
    get_rule,
    lint_paths,
    render_json,
    render_sarif,
    render_text,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Project-specific static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RULE-ID",
        help="run only this rule (repeatable); default: all registered rules",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--changed",
        metavar="BASE-REF",
        default=None,
        help=(
            "diff-aware mode: report findings only in files changed since "
            "this git ref (whole-program graph is still built over all "
            "paths)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules with their family and scopes, then exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also show justified (suppressed) findings in text output",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            scopes = ", ".join(rule.scopes) if rule.scopes else "everywhere"
            print(f"{rule.id:32s} [{rule.family}] ({scopes})")
            print(f"    {rule.description}")
        return 0

    if args.rule:
        try:
            for rule_id in args.rule:
                get_rule(rule_id)
        except KeyError as exc:
            print(f"repro-lint: {exc.args[0]}", file=sys.stderr)
            return 2

    paths = [Path(p) for p in args.paths]
    for path in paths:
        if not path.exists():
            print(f"repro-lint: no such path: {path}", file=sys.stderr)
            return 2

    changed: set[Path] | None = None
    if args.changed is not None:
        try:
            changed = changed_files(args.changed)
        except Exception as exc:
            print(
                f"repro-lint: cannot resolve --changed {args.changed}: {exc}",
                file=sys.stderr,
            )
            return 2

    report = lint_paths(paths, rule_ids=args.rule, changed_only=changed)
    if args.format == "json":
        print(render_json(report))
    elif args.format == "sarif":
        print(render_sarif(report), end="")
    else:
        print(render_text(report, verbose=args.verbose))
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
