"""Shared AST helpers: name resolution and guard analysis.

The rules here are syntactic, not type-checked — precision comes from
resolving *imports* (so ``from time import time as now; now()`` is still
caught) and from a conservative notion of "guarded" (an ancestor ``if`` /
ternary / short-circuit ``and`` whose test provably checks the obs-enabled
flag or ``x is not None``).  False negatives are possible by design;
false positives are what the fixture tests pin down.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.model import ParentMap


def collect_imports(tree: ast.Module) -> dict[str, str]:
    """Local name → dotted origin for every top-level import.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from time import time as now`` → ``{"now": "time.time"}``.
    Relative imports resolve to their bare module tail (enough for the
    determinism rules, which only chase absolute stdlib origins).
    """
    origins: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origins[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                origins[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return origins


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def resolved_call_target(call: ast.Call, origins: dict[str, str]) -> str | None:
    """The call target's dotted origin, imports resolved.

    ``time.time()`` with ``import time`` → ``"time.time"``;
    ``now()`` with ``from time import time as now`` → ``"time.time"``;
    an unresolvable target (method on a local object) → its syntactic
    dotted form, or ``None``.
    """
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    head, _, tail = dotted.partition(".")
    origin = origins.get(head)
    if origin is None:
        return dotted
    return f"{origin}.{tail}" if tail else origin


def _expr_matches(expr: ast.AST, text: str) -> bool:
    try:
        return ast.unparse(expr) == text
    except Exception:  # pragma: no cover - unparse failure on exotic nodes
        return False


def test_checks_enabled(test: ast.AST, proxies: frozenset[str]) -> bool:
    """Whether *test* (an ``if``/ternary condition) checks the obs-enabled
    flag: an ``<x>.enabled`` attribute, a call to ``enabled()`` /
    ``_obs_enabled()``, or a local proxy name bound from one of those
    (``tracing = tracer.enabled``)."""
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and node.attr == "enabled":
            return True
        if isinstance(node, ast.Name) and node.id in proxies:
            return True
        if isinstance(node, ast.Call):
            target = dotted_name(node.func)
            if target is not None and target.split(".")[-1] in (
                "enabled",
                "_obs_enabled",
            ):
                return True
    return False


def test_checks_not_none(test: ast.AST, receiver_text: str) -> bool:
    """Whether *test* contains ``<receiver> is not None`` (or a bare
    truthiness check of the receiver) for the given receiver expression
    text (``ledger``, ``self.ledger``, ``trace.ledger`` …)."""
    for node in ast.walk(test):
        if isinstance(node, ast.Compare) and len(node.ops) == 1:
            if (
                isinstance(node.ops[0], ast.IsNot)
                and isinstance(node.comparators[0], ast.Constant)
                and node.comparators[0].value is None
                and _expr_matches(node.left, receiver_text)
            ):
                return True
        if isinstance(node, (ast.Name, ast.Attribute)) and _expr_matches(
            node, receiver_text
        ):
            # Bare truthiness (``if ledger and ...``) — only counts when
            # the receiver is the whole test or a BoolOp operand, not an
            # arbitrary subexpression like a call argument.
            parent_ok = isinstance(test, (ast.Name, ast.Attribute)) or any(
                isinstance(op, ast.BoolOp) and node in op.values
                for op in ast.walk(test)
            )
            if parent_ok:
                return True
    return False


def guard_tests(node: ast.AST, parents: ParentMap) -> Iterator[ast.AST]:
    """Every conditional test that dominates *node*:

    * an ancestor ``if`` statement when the node sits in its ``body``;
    * an ancestor ternary when the node sits in its true branch;
    * the earlier operands of an ancestor short-circuit ``and``.
    """
    child: ast.AST = node
    for parent in parents.ancestors(node):
        if isinstance(parent, ast.If) and _contains(parent.body, child):
            yield parent.test
        elif isinstance(parent, ast.IfExp) and parent.body is child:
            yield parent.test
        elif isinstance(parent, ast.BoolOp) and isinstance(parent.op, ast.And):
            try:
                idx = parent.values.index(child)
            except ValueError:
                idx = -1
            for earlier in parent.values[: max(idx, 0)]:
                yield earlier
        elif isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # Guards don't cross function (or lambda) boundaries: the
            # body may run after the guard's truth has changed.
            return
        child = parent


def _contains(stmts: list[ast.stmt], node: ast.AST) -> bool:
    for stmt in stmts:
        if stmt is node:
            return True
        for sub in ast.walk(stmt):
            if sub is node:
                return True
    return False


def enabled_proxies(tree: ast.AST) -> frozenset[str]:
    """Names bound from an ``.enabled`` read (``tracing = tracer.enabled``)
    anywhere in *tree* — treated as guard-equivalent in conditions."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Attribute) and sub.attr == "enabled":
                        names.add(target.id)
                        break
    return frozenset(names)


def enclosing_function(
    node: ast.AST, parents: ParentMap
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    for parent in parents.ancestors(node):
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return parent
    return None


def enclosing_class(node: ast.AST, parents: ParentMap) -> ast.ClassDef | None:
    for parent in parents.ancestors(node):
        if isinstance(parent, ast.ClassDef):
            return parent
    return None
