"""`repro.lint` — AST-based enforcement of the repo's standing invariants.

Four PRs of machinery (plan cache, service daemon, obs layer, incremental
kernel) rest on contracts that differential tests exercise but nothing
*enforces* at the source level: byte-identical determinism of mappings, a
stdlib-only service/obs layer, <2%-overhead-when-off observability, and
lock-guarded shared state in :mod:`repro.service`.  This package makes
those contracts statically checked — ``python -m repro.lint src`` walks
the tree, applies every registered rule inside its scoped packages, and
exits non-zero on any unsuppressed finding.

Rule families (see DESIGN.md §12 for the invariant ↔ PR mapping):

* **determinism** — no wall-clock reads, no global RNG, no iteration over
  bare sets in `repro/core`, `repro/sim`, `repro/baselines`,
  `repro/workload`.  One stray ``time.time()`` or unseeded ``random``
  call silently corrupts every table the paper reproduction produces.
* **stdlib-only** — an import whitelist for ``src/repro`` (stdlib +
  declared deps), with a stricter no-third-party tier for the
  service/obs/perf layer whose deploy story is "copy the tree, run it".
* **obs-discipline** — every :mod:`repro.obs` log/span/ledger call site
  inside `repro/core` and `repro/sim` must sit behind an enabled-guard,
  preserving the <2% disabled-path budget.
* **lock-discipline** — attributes declared shared via ``# guarded-by:
  <lock>`` may only be touched inside ``with self.<lock>:`` (or a method
  that documents holding it) — a lightweight static race detector for
  the service's dispatcher/worker/handler threads.
* **hygiene** — no mutable default arguments, no bare ``except:``, no
  ``assert`` for runtime validation anywhere in ``src/repro``.

Four *whole-program* families (PR 10) run against a project-wide symbol
table and call graph (:mod:`repro.lint.callgraph`) instead of one file at
a time:

* **lock-order** — a lock-acquisition graph from nested ``with <lock>:``
  contexts, ``*_locked`` call edges and ``# acquires: <lock>``
  annotations; any cycle (Router ↔ Dispatcher ↔ Session …) is a
  potential deadlock, reported with the full witness path.
* **guard-verification** — stop trusting the ``_locked`` suffix: any
  resolved call path reaching a ``# guarded-by:`` attribute or a
  lock-contract function without the declared lock provably held.
* **process-boundary** — payloads crossing the ``ShardProcess`` command
  pipe / result queue must be picklable-by-construction (no locks,
  threads, sockets, generators, lambdas, open files), and no thread may
  start before ``fork()`` on the shard setup path.
* **blocking-discipline** — ``Queue.get``/bounded ``put`` and
  ``Connection.recv`` in service/util threads need a timeout (or a prior
  ``poll()``), or a justified suppression.

Suppressions are inline and must carry a justification::

    foo = risky()  # repro-lint: disable=no-assert -- validated upstream

A suppression without the ``-- reason`` tail is itself a finding, so the
CI gate fails on unjustified opt-outs by construction.
"""

from repro.lint.callgraph import Project, build_project
from repro.lint.model import FileContext, Finding, Suppression
from repro.lint.registry import Rule, all_rules, get_rule, register
from repro.lint.runner import (
    LintReport,
    SCHEMA,
    changed_files,
    lint_file,
    lint_paths,
    render_json,
    render_sarif,
    render_text,
)

# Importing the rule modules registers every built-in rule.
from repro.lint import rules as _rules  # noqa: F401  (registration side effect)

__all__ = [
    "FileContext",
    "Finding",
    "LintReport",
    "Project",
    "Rule",
    "SCHEMA",
    "Suppression",
    "all_rules",
    "build_project",
    "changed_files",
    "get_rule",
    "lint_file",
    "lint_paths",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
]
