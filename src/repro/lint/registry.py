"""Rule base class and registry.

A rule is a named check scoped to the packages where its invariant holds.
``check(ctx)`` yields :class:`~repro.lint.model.Finding`s with
``suppressed=False``; the runner applies inline suppressions afterwards so
rules never need to know about them.

Two kinds of rule exist.  *Per-file* rules (the PR 5 families) see one
:class:`~repro.lint.model.FileContext` at a time.  *Program* rules
(``program=True``) see the whole-program
:class:`~repro.lint.callgraph.Project` built over every file in the run —
that is what lets them follow call chains and lock orders across modules.
Both yield plain findings; scope filtering and suppressions are applied
per finding by the runner, using the file each finding lands in.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Iterable, Iterator

from repro.lint.model import FileContext, Finding

_RULE_ID_RE = re.compile(r"^[a-z][a-z0-9]*(-[a-z0-9]+)*$")


class Rule:
    """One registered lint rule.

    Parameters
    ----------
    rule_id:
        Kebab-case identifier used in output, ``--rule`` filters and
        suppression comments.
    family:
        Rule family (``determinism``, ``stdlib-only``, ``obs-discipline``,
        ``lock-discipline``, ``api-hygiene``) — groups related rules in
        ``--list-rules`` and the JSON report.
    description:
        One-line statement of the invariant the rule enforces.
    scopes:
        Dotted module prefixes the rule applies to (empty = everywhere
        under the linted tree).
    check:
        ``FileContext -> Iterable[Finding]`` for per-file rules;
        ``Project -> Iterable[Finding]`` when ``program=True``.
    program:
        Whole-program rule: runs once per lint invocation against the
        :class:`~repro.lint.callgraph.Project`, not per file.
    """

    def __init__(
        self,
        rule_id: str,
        family: str,
        description: str,
        scopes: tuple[str, ...],
        check: Callable[..., Iterable[Finding]],
        program: bool = False,
    ) -> None:
        if not _RULE_ID_RE.match(rule_id):
            raise ValueError(f"rule id {rule_id!r} is not kebab-case")
        self.id = rule_id
        self.family = family
        self.description = description
        self.scopes = scopes
        self.program = program
        self._check = check

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_scope(self.scopes)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if self.program:
            raise TypeError(
                f"rule {self.id!r} is whole-program; use check_program()"
            )
        for finding in self._check(ctx):
            yield finding

    def check_program(self, project: Any) -> Iterator[Finding]:
        """Run a ``program=True`` rule against the whole
        :class:`~repro.lint.callgraph.Project`."""
        if not self.program:
            raise TypeError(f"rule {self.id!r} is per-file; use check()")
        for finding in self._check(project):
            yield finding

    def finding(self, ctx: FileContext, node: Any, message: str) -> Finding:
        """Convenience constructor stamping this rule's id and *node*'s
        location onto a :class:`Finding`."""
        return Finding(
            rule=self.id,
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"Rule({self.id!r}, scopes={self.scopes!r})"


_REGISTRY: dict[str, Rule] = {}


def register(
    rule_id: str,
    family: str,
    description: str,
    scopes: tuple[str, ...] = (),
    program: bool = False,
) -> Callable[[Callable[..., Iterable[Finding]]], Rule]:
    """Decorator registering a check function as a :class:`Rule`.

    The decorated name rebinds to the :class:`Rule` instance, so rule
    modules can cross-reference each other's scopes if needed.  Pass
    ``program=True`` for whole-program rules (the check receives the
    :class:`~repro.lint.callgraph.Project` instead of a file context).
    """

    def wrap(check: Callable[..., Iterable[Finding]]) -> Rule:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        rule = Rule(rule_id, family, description, scopes, check, program)
        _REGISTRY[rule_id] = rule
        return rule

    return wrap


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by (family, id)."""
    return sorted(_REGISTRY.values(), key=lambda r: (r.family, r.id))


def get_rule(rule_id: str) -> Rule:
    """The rule registered under *rule_id* (KeyError with the known ids)."""
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown rule {rule_id!r}; known rules: {known}") from None
