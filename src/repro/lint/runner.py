"""File walking, rule dispatch, suppression handling, and report output."""

from __future__ import annotations

import json
import subprocess
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.model import FileContext, Finding, module_path_for
from repro.lint.registry import Rule, all_rules, get_rule

#: JSON report schema identifier (versioned like the perf schemas).
SCHEMA = "repro.lint/1"

#: Pseudo-rule id for suppressions missing the mandatory justification.
UNJUSTIFIED = "suppression-needs-justification"


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: tuple[str, ...] = ()

    @property
    def unsuppressed(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        return not self.unsuppressed

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.unsuppressed:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return counts


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Every ``.py`` file under *paths* (files pass through; directories
    are walked recursively, skipping caches), sorted for determinism."""
    out: set[Path] = set()
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                out.add(path)
        elif path.is_dir():
            for sub in path.rglob("*.py"):
                if "__pycache__" in sub.parts:
                    continue
                out.add(sub)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(out)


def _apply_suppression(ctx: FileContext, finding: Finding) -> Finding:
    """The finding, marked suppressed when a matching (justified) inline
    suppression covers its line."""
    sup = ctx.suppression_for(finding.rule, finding.line)
    if sup is None:
        return finding
    return Finding(
        rule=finding.rule,
        path=finding.path,
        line=finding.line,
        col=finding.col,
        message=finding.message,
        suppressed=sup.reason is not None,
        justification=sup.reason,
    )


def _unjustified_findings(ctx: FileContext) -> list[Finding]:
    """A suppression must carry ``-- justification``; one without it is a
    finding at the comment's own line (never maskable by itself)."""
    return [
        Finding(
            rule=UNJUSTIFIED,
            path=str(ctx.path),
            line=sup.line,
            col=0,
            message=(
                "suppression comment lacks a justification; write "
                "'# repro-lint: disable=<rule> -- <why this is safe>'"
            ),
        )
        for sup in ctx.suppressions
        if sup.reason is None
    ]


def lint_file(
    path: Path,
    rules: list[Rule] | None = None,
    module: str | None = None,
) -> list[Finding]:
    """Lint one file with the *per-file* rules; returns every finding
    (suppressed ones flagged).  Whole-program rules are skipped — they
    need :func:`lint_paths`, which builds the project graph.

    *module* overrides the inferred dotted module path (tests use this to
    pin fixture files to arbitrary scopes).
    """
    source = path.read_text(encoding="utf-8")
    ctx = FileContext(
        path, source, module if module is not None else module_path_for(path)
    )
    findings: list[Finding] = []
    for rule in rules if rules is not None else all_rules():
        if rule.program or not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            findings.append(_apply_suppression(ctx, finding))
    findings.extend(_unjustified_findings(ctx))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def changed_files(base_ref: str, repo_root: Path | None = None) -> set[Path]:
    """Absolute paths of files changed since *base_ref* (``git diff`` plus
    untracked), for ``--changed`` runs."""
    root = repo_root
    if root is None:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=True,
        )
        root = Path(top.stdout.strip())
    out: set[Path] = set()
    diff = subprocess.run(
        ["git", "diff", "--name-only", base_ref, "--"],
        capture_output=True,
        text=True,
        check=True,
        cwd=root,
    )
    untracked = subprocess.run(
        ["git", "ls-files", "--others", "--exclude-standard"],
        capture_output=True,
        text=True,
        check=True,
        cwd=root,
    )
    for line in diff.stdout.splitlines() + untracked.stdout.splitlines():
        name = line.strip()
        if name:
            out.add((root / name).resolve())
    return out


def lint_paths(
    paths: list[str | Path],
    rule_ids: list[str] | None = None,
    modules: dict[Path, str] | None = None,
    changed_only: set[Path] | None = None,
) -> LintReport:
    """Lint every Python file under *paths* with the selected rules.

    Per-file rules run file by file; whole-program rules run once against
    a :class:`~repro.lint.callgraph.Project` built over the *entire* file
    set, with each finding then scoped and suppression-checked via the
    file it lands in.  With *changed_only* (absolute paths), the project
    graph still covers everything, but only findings in changed files are
    reported — the diff-aware ``--changed`` mode.

    *modules* overrides inferred dotted module paths per file (tests use
    this to pin fixtures to arbitrary scopes).
    """
    selected = (
        [get_rule(rid) for rid in rule_ids] if rule_ids else all_rules()
    )
    report = LintReport(rules_run=tuple(r.id for r in selected))
    contexts: list[FileContext] = []
    for path in iter_python_files([Path(p) for p in paths]):
        module = (modules or {}).get(path)
        contexts.append(
            FileContext(
                path,
                path.read_text(encoding="utf-8"),
                module if module is not None else module_path_for(path),
            )
        )

    def reportable(ctx: FileContext) -> bool:
        return changed_only is None or ctx.path.resolve() in changed_only

    per_file = [r for r in selected if not r.program]
    program = [r for r in selected if r.program]
    by_path = {str(ctx.path): ctx for ctx in contexts}
    for ctx in contexts:
        report.files_checked += 1
        if not reportable(ctx):
            continue
        for rule in per_file:
            if not rule.applies_to(ctx):
                continue
            for finding in rule.check(ctx):
                report.findings.append(_apply_suppression(ctx, finding))
        report.findings.extend(_unjustified_findings(ctx))
    if program and contexts:
        from repro.lint.callgraph import build_project

        project = build_project(contexts)
        for rule in program:
            for finding in rule.check_program(project):
                ctx = by_path.get(finding.path)
                if ctx is None or not reportable(ctx):
                    continue
                if not rule.applies_to(ctx):
                    continue
                report.findings.append(_apply_suppression(ctx, finding))
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


def render_text(report: LintReport, verbose: bool = False) -> str:
    """Human-readable report (one finding per line, clickable locations)."""
    lines: list[str] = []
    for f in report.unsuppressed:
        lines.append(f"{f.path}:{f.line}:{f.col + 1}: [{f.rule}] {f.message}")
    if verbose:
        for f in report.suppressed:
            lines.append(
                f"{f.path}:{f.line}:{f.col + 1}: [{f.rule}] suppressed "
                f"({f.justification})"
            )
    n_bad = len(report.unsuppressed)
    lines.append(
        f"{report.files_checked} file(s) checked, "
        f"{n_bad} finding(s), {len(report.suppressed)} suppressed"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The machine-readable report (schema ``repro.lint/1``)."""
    doc = {
        "schema": SCHEMA,
        "ok": report.ok,
        "files_checked": report.files_checked,
        "rules_run": list(report.rules_run),
        "counts": report.counts_by_rule(),
        "findings": [f.to_dict() for f in report.findings],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def render_sarif(report: LintReport, base_dir: Path | None = None) -> str:
    """SARIF 2.1.0 output, so CI can annotate PRs via ``upload-sarif``.

    Unsuppressed findings are ``error`` level; justified suppressions are
    emitted with an ``inSource`` suppression object so viewers show them
    struck through rather than hiding the history.  URIs are relative to
    *base_dir* (default: the current directory) when possible.
    """
    base = (base_dir or Path.cwd()).resolve()

    def uri(path: str) -> str:
        p = Path(path).resolve()
        try:
            return p.relative_to(base).as_posix()
        except ValueError:
            return p.as_posix()

    rule_ids = sorted(
        set(report.rules_run)
        | {f.rule for f in report.findings}
    )
    try:
        descriptions = {r.id: r.description for r in all_rules()}
    except Exception:  # pragma: no cover - registry always importable
        descriptions = {}
    results = []
    for f in report.findings:
        result: dict[str, object] = {
            "ruleId": f.rule,
            "level": "none" if f.suppressed else "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": uri(f.path)},
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        if f.suppressed:
            result["suppressions"] = [
                {
                    "kind": "inSource",
                    "justification": f.justification or "",
                }
            ]
        results.append(result)
    doc = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro",
                        "rules": [
                            {
                                "id": rid,
                                "shortDescription": {
                                    "text": descriptions.get(rid, rid)
                                },
                            }
                            for rid in rule_ids
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
