"""File walking, rule dispatch, suppression handling, and report output."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.model import FileContext, Finding, module_path_for
from repro.lint.registry import Rule, all_rules, get_rule

#: JSON report schema identifier (versioned like the perf schemas).
SCHEMA = "repro.lint/1"

#: Pseudo-rule id for suppressions missing the mandatory justification.
UNJUSTIFIED = "suppression-needs-justification"


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: tuple[str, ...] = ()

    @property
    def unsuppressed(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        return not self.unsuppressed

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.unsuppressed:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return counts


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Every ``.py`` file under *paths* (files pass through; directories
    are walked recursively, skipping caches), sorted for determinism."""
    out: set[Path] = set()
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                out.add(path)
        elif path.is_dir():
            for sub in path.rglob("*.py"):
                if "__pycache__" in sub.parts:
                    continue
                out.add(sub)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(out)


def lint_file(
    path: Path,
    rules: list[Rule] | None = None,
    module: str | None = None,
) -> list[Finding]:
    """Lint one file; returns every finding (suppressed ones flagged).

    *module* overrides the inferred dotted module path (tests use this to
    pin fixture files to arbitrary scopes).
    """
    source = path.read_text(encoding="utf-8")
    ctx = FileContext(
        path, source, module if module is not None else module_path_for(path)
    )
    findings: list[Finding] = []
    for rule in rules if rules is not None else all_rules():
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            sup = ctx.suppression_for(finding.rule, finding.line)
            if sup is not None:
                findings.append(
                    Finding(
                        rule=finding.rule,
                        path=finding.path,
                        line=finding.line,
                        col=finding.col,
                        message=finding.message,
                        suppressed=sup.reason is not None,
                        justification=sup.reason,
                    )
                )
            else:
                findings.append(finding)
    # A suppression must carry "-- justification"; one without it is a
    # finding at the comment's own line (never maskable by itself).
    for sup in ctx.suppressions:
        if sup.reason is None:
            findings.append(
                Finding(
                    rule=UNJUSTIFIED,
                    path=str(path),
                    line=sup.line,
                    col=0,
                    message=(
                        "suppression comment lacks a justification; write "
                        "'# repro-lint: disable=<rule> -- <why this is safe>'"
                    ),
                )
            )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_paths(
    paths: list[str | Path],
    rule_ids: list[str] | None = None,
) -> LintReport:
    """Lint every Python file under *paths* with the selected rules."""
    selected = (
        [get_rule(rid) for rid in rule_ids] if rule_ids else all_rules()
    )
    report = LintReport(rules_run=tuple(r.id for r in selected))
    for path in iter_python_files([Path(p) for p in paths]):
        report.files_checked += 1
        report.findings.extend(lint_file(path, selected))
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


def render_text(report: LintReport, verbose: bool = False) -> str:
    """Human-readable report (one finding per line, clickable locations)."""
    lines: list[str] = []
    for f in report.unsuppressed:
        lines.append(f"{f.path}:{f.line}:{f.col + 1}: [{f.rule}] {f.message}")
    if verbose:
        for f in report.suppressed:
            lines.append(
                f"{f.path}:{f.line}:{f.col + 1}: [{f.rule}] suppressed "
                f"({f.justification})"
            )
    n_bad = len(report.unsuppressed)
    lines.append(
        f"{report.files_checked} file(s) checked, "
        f"{n_bad} finding(s), {len(report.suppressed)} suppressed"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The machine-readable report (schema ``repro.lint/1``)."""
    doc = {
        "schema": SCHEMA,
        "ok": report.ok,
        "files_checked": report.files_checked,
        "rules_run": list(report.rules_run),
        "counts": report.counts_by_rule(),
        "findings": [f.to_dict() for f in report.findings],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
