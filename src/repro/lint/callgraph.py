"""Whole-program model: symbol tables, a call graph, and lock analysis.

The per-file rules of PR 5 trust conventions (the ``*_locked`` suffix, the
``# guarded-by:`` comments) without being able to *verify* them — that
needs the project, not the file.  This module builds, from every
:class:`~repro.lint.model.FileContext` in one lint run:

* a **symbol table** — every class and function under its dotted qualified
  name, with the lock attributes each class declares
  (``self._lock = threading.Lock()`` and friends; a
  ``threading.Condition(self._lock)`` is an *alias* of the lock it wraps);
* **light type inference** — ``self.x = ClassName(...)`` in ``__init__``,
  annotated parameters stored on ``self``, local assignments, and a small
  set of concurrency factories (``threading.Thread`` → thread,
  ``ctx.Pipe()`` → a pair of connections, ``ctx.Queue()`` → queue …).
  Union annotations (``A | B``) fan out to every resolvable class;
* a **call graph** — call sites resolved through imports, ``self``,
  inferred attribute/local types and class constructors.  Unresolvable
  method calls fall back to *duck* edges (every project method of that
  name) unless the name collides with a builtin-container method —
  ``x.get(...)`` is almost always a dict, never ``ShardRouter.get``;
* **lock analysis** — for any AST node, the set of locks lexically held
  (enclosing ``with self._lock:`` blocks, ``.acquire()``/``.release()``
  intervals, the function's own contract), and per function the set of
  locks it may acquire *transitively* through the call graph, each with a
  witness chain for findings.

Annotation grammar (trailing comments, same style as ``# guarded-by:``):

* ``# requires-lock: <attr>`` — the function runs with ``self.<attr>``
  held by its caller (the ``*_locked`` naming convention is equivalent;
  both may also appear on the first line of the body);
* ``# acquires: <attr>`` or ``# acquires: Class.<attr>`` — the function
  acquires that lock internally in a way the AST cannot see (C code,
  dynamic dispatch); it is fed into the lock-order graph as if a
  ``with`` were visible.

Everything here is deliberately syntactic and conservative: resolution
that cannot be proven is dropped (guard verification under-approximates,
so it never false-positives on unknown receivers) or widened (lock-order
follows duck edges, so a potential cycle through an untyped ``backend``
attribute is still seen).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.lint.astutil import collect_imports, dotted_name
from repro.lint.model import FileContext, ParentMap

_REQUIRES_LOCK_RE = re.compile(
    r"#\s*requires-lock:\s*(?:self\.)?([A-Za-z_][A-Za-z0-9_]*)"
)
_ACQUIRES_RE = re.compile(
    r"#\s*acquires:\s*((?:[A-Za-z_][A-Za-z0-9_]*\.)?[A-Za-z_][A-Za-z0-9_]*)"
)
_GUARDED_BY_RE = re.compile(
    r"#\s*guarded-by:\s*(?:self\.)?([A-Za-z_][A-Za-z0-9_]*)"
)

#: Dotted factory → inferred kind tag for concurrency primitives.
_KIND_FACTORIES: dict[str, str] = {
    "threading.Lock": "lock",
    "threading.RLock": "lock",
    "threading.Semaphore": "lock",
    "threading.BoundedSemaphore": "lock",
    "threading.Condition": "condition",
    "threading.Event": "event",
    "threading.Thread": "thread",
    "threading.Timer": "thread",
    "queue.Queue": "queue",
    "queue.SimpleQueue": "queue",
    "queue.LifoQueue": "queue",
    "queue.PriorityQueue": "queue",
    "multiprocessing.Queue": "queue",
    "multiprocessing.SimpleQueue": "queue",
    "multiprocessing.JoinableQueue": "queue",
    "multiprocessing.Process": "process",
    "multiprocessing.get_context": "mpcontext",
    "multiprocessing.Lock": "lock",
    "multiprocessing.RLock": "lock",
    "socket.socket": "socket",
    "socket.create_connection": "socket",
    "open": "file",
}

#: Methods of an mpcontext object (``ctx = multiprocessing.get_context()``).
_CONTEXT_FACTORIES: dict[str, str] = {
    "Queue": "queue",
    "SimpleQueue": "queue",
    "JoinableQueue": "queue",
    "Process": "process",
    "Lock": "lock",
    "RLock": "lock",
    "Pipe": "pipe-pair",
}

#: Method names never duck-resolved: they collide with builtin containers
#: or concurrency primitives, so an unresolved ``x.get(...)`` is far more
#: likely a dict than a project method.
_DUCK_EXCLUDE = frozenset(
    set(dir(dict)) | set(dir(list)) | set(dir(set)) | set(dir(str))
    | set(dir(bytes)) | set(dir(tuple)) | set(dir(frozenset))
    | {
        "acquire", "release", "wait", "notify", "notify_all", "locked",
        "send", "recv", "send_bytes", "recv_bytes", "poll", "fileno",
        "put", "get", "put_nowait", "get_nowait", "qsize", "empty", "full",
        "join", "start", "run", "is_alive", "terminate", "kill",
        "close", "open", "read", "write", "flush", "popleft", "appendleft",
        "move_to_end", "popitem", "set", "is_set",
    }
)

#: Cap on duck fan-out: a name defined on more project classes than this
#: is too generic to resolve by name alone.
_DUCK_LIMIT = 6


def _comment_annotation(
    ctx: FileContext,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    pattern: re.Pattern[str],
) -> list[str]:
    """Every *pattern* match on the ``def`` line, a standalone comment
    directly above it, or the first line of the body."""
    lines = {node.lineno, node.lineno - 1}
    if node.body:
        first = node.body[0].lineno
        lines.add(first)
        # Standalone comment lines between the signature and the body
        # (``def f(self):`` / ``# requires-lock: _lock`` / first stmt).
        lines.update(range(node.lineno + 1, first))
    out: list[str] = []
    for lineno in sorted(lines):
        text = ctx.line_text(lineno)
        stripped = text.strip()
        if lineno < node.lineno and not stripped.startswith("#"):
            continue
        if node.lineno < lineno and (
            node.body and lineno < node.body[0].lineno
        ) and not stripped.startswith("#"):
            continue
        out.extend(m.group(1) for m in pattern.finditer(text))
    return out


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    qname: str  # e.g. "repro.service.jobs.ShardRouter.submit"
    module: str
    name: str
    class_qname: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    ctx: FileContext
    requires_lock: str | None = None  # own-class lock attr held on entry
    acquires_notes: tuple[str, ...] = ()  # raw "# acquires:" annotations

    @property
    def short(self) -> str:
        """Class-qualified display name (``ShardRouter.submit``)."""
        if self.class_qname is not None:
            return f"{self.class_qname.rsplit('.', 1)[-1]}.{self.name}"
        return self.name


@dataclass
class ClassInfo:
    """One class: its methods, declared locks, and inferred attr types."""

    qname: str
    module: str
    name: str
    node: ast.ClassDef
    ctx: FileContext
    bases: tuple[str, ...] = ()
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: lock attr → "lock" | "condition"
    locks: dict[str, str] = field(default_factory=dict)
    #: condition attr → the lock attr it wraps (identity alias)
    lock_alias: dict[str, str] = field(default_factory=dict)
    #: attr → inferred kind tag ("class:<qname>", "lock", "queue", …)
    attr_kinds: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: attr → guarding lock attr (from "# guarded-by:")
    guarded: dict[str, str] = field(default_factory=dict)

    def canonical_lock(self, attr: str) -> str | None:
        """The lock attr *attr* names, following condition aliases."""
        if attr in self.lock_alias:
            return self.lock_alias[attr]
        if attr in self.locks:
            return attr
        return None

    def default_lock(self) -> str | None:
        """The lock a bare ``*_locked`` method of this class implies:
        ``_lock`` when declared, else the class's only lock."""
        real = [a for a, kind in self.locks.items() if kind == "lock"]
        if "_lock" in real:
            return "_lock"
        if len(real) == 1:
            return real[0]
        return None


#: A lock's identity: ``(owner, attr)`` where owner is a class qname for
#: instance locks or ``<module>:<function>`` for function-local locks.
LockId = tuple[str, str]


def lock_label(lock: LockId) -> str:
    owner, attr = lock[0].rsplit(".", 1)[-1], lock[1]
    return f"{owner}.{attr}"


@dataclass
class CallSite:
    """One resolved call: where, from whom, to whom."""

    caller: FunctionInfo
    node: ast.Call
    targets: tuple[FunctionInfo, ...]
    duck: bool  # resolved by name only (over-approximation)


class Project:
    """The whole-program view the program-scoped rules analyze."""

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        self.contexts: dict[str, FileContext] = {
            str(ctx.path): ctx for ctx in contexts
        }
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: bare class name → [qnames] (for annotation resolution)
        self._class_by_name: dict[str, list[str]] = {}
        #: method name → [FunctionInfo] (duck resolution)
        self._methods_by_name: dict[str, list[FunctionInfo]] = {}
        self._imports: dict[str, dict[str, str]] = {}
        self._parents: dict[str, ParentMap] = {}
        self._env_cache: dict[str, dict[str, tuple[str, ...]]] = {}
        self._callsites: dict[str, list[CallSite]] | None = None
        self._acquires: dict[str, dict[LockId, list[tuple[str, int]]]] | None = None
        for ctx in sorted(contexts, key=lambda c: c.module):
            self._collect(ctx)
        # Second pass: attr kinds may reference classes collected later.
        for cls in self.classes.values():
            self._infer_class_attrs(cls)

    # -- construction ------------------------------------------------------

    def _collect(self, ctx: FileContext) -> None:
        self._imports[ctx.module] = collect_imports(ctx.tree)
        self._parents[str(ctx.path)] = ParentMap.of(ctx.tree)
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                self._collect_class(ctx, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_function(ctx, node, None)

    def _collect_class(self, ctx: FileContext, node: ast.ClassDef) -> None:
        qname = f"{ctx.module}.{node.name}"
        info = ClassInfo(
            qname=qname,
            module=ctx.module,
            name=node.name,
            node=node,
            ctx=ctx,
            bases=tuple(
                d for d in (dotted_name(b) for b in node.bases) if d is not None
            ),
        )
        self.classes[qname] = info
        self._class_by_name.setdefault(node.name, []).append(qname)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_function(ctx, item, info)

    def _collect_function(
        self,
        ctx: FileContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: ClassInfo | None,
    ) -> None:
        qname = (
            f"{cls.qname}.{node.name}" if cls is not None
            else f"{ctx.module}.{node.name}"
        )
        # "__default__" defers resolution to entry_locks(): the class's
        # lock attrs are only known after the second inference pass.
        requires = None
        annotated = _comment_annotation(ctx, node, _REQUIRES_LOCK_RE)
        if annotated:
            requires = annotated[0]
        elif node.name.endswith("_locked") and cls is not None:
            requires = "__default__"
        info = FunctionInfo(
            qname=qname,
            module=ctx.module,
            name=node.name,
            class_qname=cls.qname if cls is not None else None,
            node=node,
            ctx=ctx,
            requires_lock=requires,
            acquires_notes=tuple(_comment_annotation(ctx, node, _ACQUIRES_RE)),
        )
        self.functions[qname] = info
        if cls is not None:
            cls.methods[node.name] = info
            self._methods_by_name.setdefault(node.name, []).append(info)

    def _infer_class_attrs(self, cls: ClassInfo) -> None:
        init = cls.methods.get("__init__")
        param_kinds: dict[str, tuple[str, ...]] = {}
        if init is not None:
            for arg in init.node.args.args + init.node.args.kwonlyargs:
                if arg.annotation is not None:
                    kinds = self._annotation_kinds(arg.annotation, cls.module)
                    if kinds:
                        param_kinds[arg.arg] = kinds
        # Walk every method (not just __init__) so late-bound attrs and
        # fixtures with setup helpers still resolve; first writer wins,
        # which keeps __init__ (collected first in class body order)
        # authoritative.
        for method in cls.methods.values():
            env = dict(param_kinds) if method is init else {}
            for node in ast.walk(method.node):
                if isinstance(node, ast.Assign):
                    self._note_assign(cls, node.targets, node.value, env)
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    self._note_assign(cls, [node.target], node.value, env)
                    attr = _self_attr(node.target)
                    if attr is not None and attr not in cls.attr_kinds:
                        kinds = self._annotation_kinds(
                            node.annotation, cls.module
                        )
                        if kinds:
                            cls.attr_kinds[attr] = kinds
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    lock = _guarded_lock(cls.ctx, node.lineno)
                    if lock is not None:
                        targets = (
                            node.targets
                            if isinstance(node, ast.Assign)
                            else [node.target]
                        )
                        for target in targets:
                            attr = _self_attr(target)
                            if attr is not None:
                                cls.guarded.setdefault(attr, lock)

    def _note_assign(
        self,
        cls: ClassInfo,
        targets: list[ast.expr],
        value: ast.expr,
        env: dict[str, tuple[str, ...]],
    ) -> None:
        kinds = self._expr_kinds(value, cls.module, env, cls)
        for target in targets:
            attr = _self_attr(target)
            if attr is None:
                if isinstance(target, ast.Name):
                    if kinds:
                        env[target.id] = kinds
                elif isinstance(target, ast.Tuple) and kinds == ("pipe-pair",):
                    # recv_conn, send_conn = ctx.Pipe(duplex=False)
                    for elt in target.elts:
                        elt_attr = _self_attr(elt)
                        if elt_attr is not None:
                            cls.attr_kinds.setdefault(
                                elt_attr, ("connection",)
                            )
                        elif isinstance(elt, ast.Name):
                            env[elt.id] = ("connection",)
                continue
            if kinds and attr not in cls.attr_kinds:
                cls.attr_kinds[attr] = kinds
            if kinds == ("lock",):
                cls.locks.setdefault(attr, "lock")
            elif kinds == ("condition",):
                cls.locks.setdefault(attr, "condition")
                wrapped = _condition_wrapped_lock(value)
                if wrapped is not None:
                    cls.lock_alias[attr] = wrapped

    def _annotation_kinds(
        self, annotation: ast.expr, module: str
    ) -> tuple[str, ...]:
        """Kind tags for a parameter/attribute annotation.  Handles string
        annotations and ``A | B`` unions of resolvable project classes."""
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return ()
        if isinstance(annotation, ast.BinOp) and isinstance(
            annotation.op, ast.BitOr
        ):
            return tuple(
                dict.fromkeys(
                    self._annotation_kinds(annotation.left, module)
                    + self._annotation_kinds(annotation.right, module)
                )
            )
        dotted = dotted_name(annotation)
        if dotted is None or dotted == "None":
            return ()
        resolved = self._resolve_class_name(dotted, module)
        if resolved is not None:
            return (f"class:{resolved}",)
        return ()

    def _resolve_class_name(self, dotted: str, module: str) -> str | None:
        """Class qname for a (possibly import-qualified) class reference."""
        origins = self._imports.get(module, {})
        head, _, tail = dotted.partition(".")
        origin = origins.get(head)
        full = f"{origin}.{tail}" if origin and tail else (origin or dotted)
        for candidate in (f"{module}.{dotted}", full, dotted):
            if candidate in self.classes:
                return candidate
        # Bare name declared in exactly one project module.
        if "." not in dotted:
            qnames = self._class_by_name.get(dotted, ())
            if len(qnames) == 1:
                return qnames[0]
        return None

    # -- expression kinds --------------------------------------------------

    def _expr_kinds(
        self,
        expr: ast.expr,
        module: str,
        env: dict[str, tuple[str, ...]],
        cls: ClassInfo | None,
    ) -> tuple[str, ...]:
        """Kind tags for *expr* (empty = unknown)."""
        if isinstance(expr, ast.GeneratorExp):
            return ("generator",)
        if isinstance(expr, ast.Lambda):
            return ("lambda",)
        if isinstance(expr, ast.Await):
            return self._expr_kinds(expr.value, module, env, cls)
        if isinstance(expr, ast.Name):
            return env.get(expr.id, ())
        if isinstance(expr, ast.Attribute):
            attr = _self_attr(expr)
            if attr is not None and cls is not None:
                return cls.attr_kinds.get(attr, ())
            # Two-level: <known>.attr
            base = self._expr_kinds(expr.value, module, env, cls)
            for kind in base:
                if kind.startswith("class:"):
                    target_cls = self.classes.get(kind[len("class:"):])
                    if target_cls is not None:
                        found = target_cls.attr_kinds.get(expr.attr)
                        if found:
                            return found
            return ()
        if not isinstance(expr, ast.Call):
            return ()
        # Calls: factories first, then project constructors.
        target = dotted_name(expr.func)
        if target is not None:
            origins = self._imports.get(module, {})
            head, _, tail = target.partition(".")
            origin = origins.get(head)
            resolved = f"{origin}.{tail}" if origin and tail else (origin or target)
            kind = _KIND_FACTORIES.get(resolved) or _KIND_FACTORIES.get(target)
            if kind is not None:
                if kind == "queue" and _bounded_queue_args(expr):
                    return ("queue-bounded",)
                return (kind,)
            class_qname = self._resolve_class_name(target, module)
            if class_qname is not None:
                return (f"class:{class_qname}",)
        # <mpcontext>.Queue() / .Pipe() / .Process()
        if isinstance(expr.func, ast.Attribute):
            base = self._expr_kinds(expr.func.value, module, env, cls)
            if "mpcontext" in base:
                kind = _CONTEXT_FACTORIES.get(expr.func.attr)
                if kind == "queue" and _bounded_queue_args(expr):
                    return ("queue-bounded",)
                if kind is not None:
                    return (kind,)
        return ()

    def function_env(self, func: FunctionInfo) -> dict[str, tuple[str, ...]]:
        """Local name → kind tags for *func* (params from annotations, a
        single linear pass over assignments; control flow ignored)."""
        cached = self._env_cache.get(func.qname)
        if cached is not None:
            return cached
        cls = (
            self.classes.get(func.class_qname)
            if func.class_qname is not None
            else None
        )
        env: dict[str, tuple[str, ...]] = {}
        args = func.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is not None:
                kinds = self._annotation_kinds(arg.annotation, func.module)
                if kinds:
                    env[arg.arg] = kinds
        self._mark_boundary_params(func, env)
        for node in ast.walk(func.node):
            if isinstance(node, ast.Assign):
                value_kinds = self._expr_kinds(node.value, func.module, env, cls)
                for target in node.targets:
                    if isinstance(target, ast.Name) and value_kinds:
                        env[target.id] = value_kinds
                    elif isinstance(target, ast.Tuple) and value_kinds == (
                        "pipe-pair",
                    ):
                        for elt in target.elts:
                            if isinstance(elt, ast.Name):
                                env[elt.id] = ("connection",)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                kinds = self._annotation_kinds(node.annotation, func.module)
                if not kinds and node.value is not None:
                    kinds = self._expr_kinds(node.value, func.module, env, cls)
                if kinds:
                    env[node.target.id] = kinds
            elif isinstance(node, ast.For) and isinstance(
                node.target, ast.Name
            ):
                kinds = self._iter_element_kinds(node.iter, func, env, cls)
                if kinds:
                    env[node.target.id] = kinds
        self._env_cache[func.qname] = env
        return env

    def _iter_element_kinds(
        self,
        iterable: ast.expr,
        func: FunctionInfo,
        env: dict[str, tuple[str, ...]],
        cls: ClassInfo | None,
    ) -> tuple[str, ...]:
        """Element kinds for ``for x in <iterable>`` when the iterable is a
        ``self.<attr>`` list built from one class's constructor
        (``self.shards = [ShardDispatcher(...) for ...]``)."""
        attr = _self_attr(iterable)
        if attr is None or cls is None:
            return ()
        init = cls.methods.get("__init__")
        if init is None:
            return ()
        for node in ast.walk(init.node):
            if not isinstance(node, ast.Assign):
                continue
            if not any(_self_attr(t) == attr for t in node.targets):
                continue
            value = node.value
            if isinstance(value, ast.ListComp):
                return self._expr_kinds(value.elt, func.module, env, cls)
            if isinstance(value, ast.List) and value.elts:
                return self._expr_kinds(value.elts[0], func.module, env, cls)
        return ()

    def _mark_boundary_params(
        self, func: FunctionInfo, env: dict[str, tuple[str, ...]]
    ) -> None:
        """Functions used as a :class:`ShardProcess` main get their first
        two parameters typed ``connection`` / ``queue`` — the RPC contract
        ``main(cmd_conn, result_queue, index, *args)``."""
        if func.qname in self._shard_mains():
            args = func.node.args.posonlyargs + func.node.args.args
            names = [a.arg for a in args if a.arg not in ("self", "cls")]
            if len(names) >= 1:
                env.setdefault(names[0], ("connection",))
            if len(names) >= 2:
                env.setdefault(names[1], ("queue",))

    def _shard_mains(self) -> frozenset[str]:
        """Qnames of functions passed as the first argument to a
        ``ShardProcess(...)`` / ``Process(target=...)`` construction."""
        cached = getattr(self, "_shard_mains_cache", None)
        if cached is not None:
            return cached
        mains: set[str] = set()
        for ctx in self.contexts.values():
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                target = dotted_name(node.func)
                fn_expr: ast.expr | None = None
                if target is not None and target.split(".")[-1] == "ShardProcess":
                    if node.args:
                        fn_expr = node.args[0]
                    for kw in node.keywords:
                        if kw.arg == "main":
                            fn_expr = kw.value
                if fn_expr is not None:
                    fn_name = dotted_name(fn_expr)
                    if fn_name is not None:
                        resolved = self._resolve_function_name(
                            fn_name, ctx.module
                        )
                        if resolved is not None:
                            mains.add(resolved.qname)
        self._shard_mains_cache = frozenset(mains)
        return self._shard_mains_cache

    def _resolve_function_name(
        self, dotted: str, module: str
    ) -> FunctionInfo | None:
        origins = self._imports.get(module, {})
        head, _, tail = dotted.partition(".")
        origin = origins.get(head)
        full = f"{origin}.{tail}" if origin and tail else (origin or dotted)
        for candidate in (f"{module}.{dotted}", full, dotted):
            found = self.functions.get(candidate)
            if found is not None and found.class_qname is None:
                return found
        return None

    # -- call graph --------------------------------------------------------

    def callsites(self, func: FunctionInfo) -> list[CallSite]:
        if self._callsites is None:
            self._callsites = {}
            for f in self.functions.values():
                self._callsites[f.qname] = list(self._resolve_callsites(f))
        return self._callsites.get(func.qname, [])

    def _resolve_callsites(self, func: FunctionInfo) -> Iterator[CallSite]:
        env = self.function_env(func)
        cls = (
            self.classes.get(func.class_qname)
            if func.class_qname is not None
            else None
        )
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            targets, duck = self._call_targets(node, func, env, cls)
            if targets:
                yield CallSite(
                    caller=func, node=node, targets=tuple(targets), duck=duck
                )

    def _call_targets(
        self,
        call: ast.Call,
        func: FunctionInfo,
        env: dict[str, tuple[str, ...]],
        cls: ClassInfo | None,
    ) -> tuple[list[FunctionInfo], bool]:
        fn = call.func
        if isinstance(fn, ast.Name):
            # Local function, imported function, or class constructor.
            found = self._resolve_function_name(fn.id, func.module)
            if found is not None:
                return [found], False
            class_qname = self._resolve_class_name(fn.id, func.module)
            if class_qname is not None:
                init = self.classes[class_qname].methods.get("__init__")
                return ([init], False) if init is not None else ([], False)
            return [], False
        if not isinstance(fn, ast.Attribute):
            return [], False
        method = fn.attr
        # self.method()
        if isinstance(fn.value, ast.Name) and fn.value.id == "self" and cls:
            found_m = self._method_on(cls, method)
            if found_m is not None:
                return [found_m], False
        # <typed expr>.method() — self attrs, typed locals, class refs.
        receiver_kinds = self._expr_kinds(fn.value, func.module, env, cls)
        resolved: list[FunctionInfo] = []
        knows_receiver = bool(receiver_kinds)
        for kind in receiver_kinds:
            if kind.startswith("class:"):
                target_cls = self.classes.get(kind[len("class:"):])
                if target_cls is not None:
                    found_m = self._method_on(target_cls, method)
                    if found_m is not None:
                        resolved.append(found_m)
        if resolved:
            return resolved, False
        # module.function()
        dotted = dotted_name(fn)
        if dotted is not None:
            found = self._resolve_function_name(dotted, func.module)
            if found is not None:
                return [found], False
            class_qname = self._resolve_class_name(dotted, func.module)
            if class_qname is not None:
                init = self.classes[class_qname].methods.get("__init__")
                if init is not None:
                    return [init], False
        # ClassName.method(...) (unbound call)
        if isinstance(fn.value, ast.Name):
            class_qname = self._resolve_class_name(fn.value.id, func.module)
            if class_qname is not None:
                found_m = self._method_on(self.classes[class_qname], method)
                if found_m is not None:
                    return [found_m], False
        # Duck fallback: every project method of that name — only when the
        # receiver's type is unknown and the name isn't container-generic.
        if knows_receiver or method in _DUCK_EXCLUDE:
            return [], False
        candidates = self._methods_by_name.get(method, [])
        if 0 < len(candidates) <= _DUCK_LIMIT:
            return sorted(candidates, key=lambda f: f.qname), True
        return [], False

    def _method_on(self, cls: ClassInfo, name: str) -> FunctionInfo | None:
        """Method lookup through project-resolvable base classes."""
        seen: set[str] = set()
        stack = [cls]
        while stack:
            cur = stack.pop(0)
            if cur.qname in seen:
                continue
            seen.add(cur.qname)
            if name in cur.methods:
                return cur.methods[name]
            for base in cur.bases:
                base_qname = self._resolve_class_name(base, cur.module)
                if base_qname is not None:
                    stack.append(self.classes[base_qname])
        return None

    # -- lock analysis -----------------------------------------------------

    def resolve_lock_expr(
        self,
        expr: ast.expr,
        func: FunctionInfo,
    ) -> LockId | None:
        """The lock identity of a ``with``/``.acquire()`` context expr:
        ``self._lock``, ``<typed>.lock``, a local lock, or None."""
        cls = (
            self.classes.get(func.class_qname)
            if func.class_qname is not None
            else None
        )
        env = self.function_env(func)
        attr = _self_attr(expr)
        if attr is not None and cls is not None:
            canonical = cls.canonical_lock(attr)
            if canonical is not None:
                return (cls.qname, canonical)
            return None
        if isinstance(expr, ast.Name):
            if env.get(expr.id) in (("lock",), ("condition",)):
                return (f"{func.module}:{func.name}", expr.id)
            return None
        if isinstance(expr, ast.Attribute):
            base_kinds = self._expr_kinds(expr.value, func.module, env, cls)
            for kind in base_kinds:
                if kind.startswith("class:"):
                    owner = self.classes.get(kind[len("class:"):])
                    if owner is not None:
                        canonical = owner.canonical_lock(expr.attr)
                        if canonical is not None:
                            return (owner.qname, canonical)
        return None

    def entry_locks(self, func: FunctionInfo) -> frozenset[LockId]:
        """Locks held when *func* is entered, per its contract:
        ``# requires-lock`` / ``*_locked`` naming, or ``__init__`` (the
        object is not yet shared, so its own locks are effectively held)."""
        cls = (
            self.classes.get(func.class_qname)
            if func.class_qname is not None
            else None
        )
        if cls is None:
            return frozenset()
        if func.name == "__init__":
            return frozenset(
                (cls.qname, a) for a in cls.locks if a not in cls.lock_alias
            )
        attr = func.requires_lock
        if attr == "__default__":
            attr = cls.default_lock()
        if attr is not None:
            canonical = cls.canonical_lock(attr)
            if canonical is not None:
                return frozenset({(cls.qname, canonical)})
        return frozenset()

    def held_locks(self, node: ast.AST, func: FunctionInfo) -> frozenset[LockId]:
        """Locks lexically held at *node* inside *func*: the entry
        contract, enclosing ``with`` blocks, and ``.acquire()`` /
        ``.release()`` intervals earlier in the function body."""
        held = set(self.entry_locks(func))
        parents = self._parents[str(func.ctx.path)]
        cur: ast.AST | None = parents.parent(node)
        while cur is not None and cur is not func.node:
            if isinstance(cur, (ast.With, ast.AsyncWith)):
                for item in cur.items:
                    lock = self.resolve_lock_expr(item.context_expr, func)
                    if lock is not None:
                        held.add(lock)
            cur = parents.parent(cur)
        lineno = getattr(node, "lineno", 0)
        for lock, intervals in self._acquire_intervals(func).items():
            for start, end in intervals:
                if start < lineno <= end:
                    held.add(lock)
        return frozenset(held)

    def _acquire_intervals(
        self, func: FunctionInfo
    ) -> dict[LockId, list[tuple[int, int]]]:
        """``.acquire()`` → matching ``.release()`` line intervals (to end
        of function when no release follows, e.g. release in ``finally``
        is matched by line order, which is what we want lexically)."""
        acquires: dict[LockId, list[int]] = {}
        releases: dict[LockId, list[int]] = {}
        for node in ast.walk(func.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("acquire", "release")
            ):
                continue
            lock = self.resolve_lock_expr(node.func.value, func)
            if lock is None:
                continue
            table = acquires if node.func.attr == "acquire" else releases
            table.setdefault(lock, []).append(node.lineno)
        end_line = getattr(func.node, "end_lineno", 10**9) or 10**9
        out: dict[LockId, list[tuple[int, int]]] = {}
        for lock, starts in acquires.items():
            rel = sorted(releases.get(lock, []))
            for start in sorted(starts):
                end = next((r for r in rel if r >= start), end_line)
                out.setdefault(lock, []).append((start, end))
        return out

    def direct_acquisitions(
        self, func: FunctionInfo
    ) -> list[tuple[LockId, int]]:
        """Blocking acquisitions *func* performs itself: ``with`` blocks,
        blocking ``.acquire()`` calls, and ``# acquires:`` annotations."""
        out: list[tuple[LockId, int]] = []
        for node in ast.walk(func.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    lock = self.resolve_lock_expr(item.context_expr, func)
                    if lock is not None:
                        out.append((lock, node.lineno))
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
                and _is_blocking_acquire(node)
            ):
                lock = self.resolve_lock_expr(node.func.value, func)
                if lock is not None:
                    out.append((lock, node.lineno))
        cls = (
            self.classes.get(func.class_qname)
            if func.class_qname is not None
            else None
        )
        for note in func.acquires_notes:
            lock = self._resolve_lock_note(note, func, cls)
            if lock is not None:
                out.append((lock, func.node.lineno))
        return out

    def _resolve_lock_note(
        self, note: str, func: FunctionInfo, cls: ClassInfo | None
    ) -> LockId | None:
        if "." in note:
            class_name, attr = note.rsplit(".", 1)
            qname = self._resolve_class_name(class_name, func.module)
            if qname is not None:
                canonical = self.classes[qname].canonical_lock(attr)
                if canonical is not None:
                    return (qname, canonical)
            return None
        if cls is not None:
            canonical = cls.canonical_lock(note)
            if canonical is not None:
                return (cls.qname, canonical)
        return None

    def transitive_acquisitions(
        self, func: FunctionInfo, follow_duck: bool = True
    ) -> dict[LockId, list[tuple[str, int]]]:
        """Locks *func* may acquire, directly or through calls; each maps
        to a witness chain ``[(caller qname, line), ...]`` ending at the
        function that takes the lock.  Fixpoint over the call graph."""
        if self._acquires is None:
            self._acquires = self._compute_acquisitions(follow_duck)
        return self._acquires.get(func.qname, {})

    def _compute_acquisitions(
        self, follow_duck: bool
    ) -> dict[str, dict[LockId, list[tuple[str, int]]]]:
        acq: dict[str, dict[LockId, list[tuple[str, int]]]] = {}
        for func in self.functions.values():
            acq[func.qname] = {
                lock: [(func.qname, line)]
                for lock, line in self.direct_acquisitions(func)
            }
        changed = True
        passes = 0
        while changed and passes < 20:
            changed = False
            passes += 1
            for func in self.functions.values():
                mine = acq[func.qname]
                for site in self.callsites(func):
                    if site.duck and not follow_duck:
                        continue
                    for target in site.targets:
                        # A call to a requires-lock function does not
                        # acquire its lock (the caller must already hold
                        # it); but locks the callee takes beyond its
                        # contract do propagate.
                        entry = self.entry_locks(target)
                        for lock, chain in acq.get(target.qname, {}).items():
                            if lock in entry or lock in mine:
                                continue
                            mine[lock] = [
                                (func.qname, site.node.lineno)
                            ] + chain
                            changed = True
        return acq

    # -- convenience -------------------------------------------------------

    def parent_map(self, ctx: FileContext) -> ParentMap:
        return self._parents[str(ctx.path)]

    def functions_in_scope(self, scopes: tuple[str, ...]) -> list[FunctionInfo]:
        return [
            f for f in sorted(self.functions.values(), key=lambda f: f.qname)
            if f.ctx.in_scope(scopes)
        ]

    def guarded_attr_accesses(
        self, func: FunctionInfo
    ) -> Iterator[tuple[str, str, ast.AST]]:
        """``(attr, lock_attr, node)`` for every guarded ``self.X`` touch
        in *func* (per its own class's ``# guarded-by:`` declarations)."""
        cls = (
            self.classes.get(func.class_qname)
            if func.class_qname is not None
            else None
        )
        if cls is None or not cls.guarded:
            return
        for node in ast.walk(func.node):
            attr = _self_attr(node)
            if attr is not None and attr in cls.guarded:
                yield attr, cls.guarded[attr], node


# -- module-level helpers -----------------------------------------------------


def _self_attr(node: ast.AST) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _guarded_lock(ctx: FileContext, lineno: int) -> str | None:
    m = _GUARDED_BY_RE.search(ctx.line_text(lineno))
    if m:
        return m.group(1)
    above = ctx.line_text(lineno - 1).strip()
    if above.startswith("#"):
        m = _GUARDED_BY_RE.search(above)
        if m:
            return m.group(1)
    return None


def _condition_wrapped_lock(value: ast.expr) -> str | None:
    """``threading.Condition(self._lock)`` → ``"_lock"``."""
    if isinstance(value, ast.Call) and value.args:
        return _self_attr(value.args[0])
    return None


def _bounded_queue_args(call: ast.Call) -> bool:
    """Whether a Queue construction declares a nonzero maxsize."""
    candidates: list[ast.expr] = list(call.args[:1])
    candidates.extend(
        kw.value for kw in call.keywords if kw.arg == "maxsize"
    )
    for expr in candidates:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
            return expr.value > 0
        return True  # non-constant maxsize: assume bounded
    return False


def _is_blocking_acquire(call: ast.Call) -> bool:
    """``.acquire()`` is blocking unless ``blocking=False`` (or a literal
    ``False`` first positional) is passed."""
    if call.args:
        first = call.args[0]
        if isinstance(first, ast.Constant) and first.value is False:
            return False
    for kw in call.keywords:
        if kw.arg == "blocking":
            value = kw.value
            return not (
                isinstance(value, ast.Constant) and value.value is False
            )
    return True


def build_project(contexts: Iterable[FileContext]) -> Project:
    """The :class:`Project` for one lint run's file set."""
    return Project(list(contexts))
