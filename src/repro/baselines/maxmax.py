"""The Max-Max static baseline (§V).

Max-Max is the paper's offline comparator, "based on the general Min-Min
approach described in [IbK77]" but maximising the same global objective the
SLRH uses.  Differences from SLRH:

* **static** — it sees the whole problem at once and has no clock, ΔT or
  receding horizon; start times are unconstrained from below;
* **per-version feasibility** — each version's energy requirement (its own
  execution energy plus worst-case outgoing-comm reserve at that version's
  output volume) is assessed independently, so the pool may contain *both*
  versions of one subtask;
* **hole insertion** — a triplet may be scheduled before the target
  machine's availability time if a sufficiently large hole exists in the
  machine calendar that honours precedence.

Each iteration: for every machine, find the feasible (subtask, version)
pair maximising the objective; among those per-machine champions commit the
best (subtask, version, machine) triplet.  Repeat until all subtasks are
mapped or no feasible candidate remains (the run is then incomplete and is
rejected, exactly like an over-τ SLRH run).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.feasibility import FeasibilityChecker
from repro.core.kernel import SchedulingKernel
from repro.core.objective import ObjectiveFunction, Weights
from repro.core.slrh import MappingResult
from repro.sim.schedule import Schedule
from repro.sim.trace import MappingTrace
from repro.util.timing import Stopwatch
from repro.workload.scenario import Scenario
from repro.workload.versions import PRIMARY, SECONDARY


@dataclass(frozen=True)
class MaxMaxConfig:
    """Max-Max tuning knobs (the objective weights, chiefly)."""

    weights: Weights
    comm_reserve: bool = True
    #: Allow scheduling into calendar holes (§V); disabling is an ablation.
    insertion: bool = True
    #: AET-term semantics of the objective (ablation; see ObjectiveFunction).
    aet_mode: str = "tent"
    #: Reuse tentative plans across rounds when the state they depend on is
    #: unchanged (see the plan cache in :mod:`repro.sim.schedule`).  Mapping
    #: results are identical either way; disabling is for benchmarking.
    plan_cache: bool = True
    #: Machine-stage selection rule.  ``"completion"`` (default) assigns
    #: each candidate (subtask, version) its minimum-completion-time
    #: machine, mirroring the [IbK77] Min-Min structure the paper says
    #: Max-Max is based on; the objective then picks among candidates.
    #: ``"objective"`` follows the §V text literally (per-machine best pair
    #: by objective) — with Table 2's constants that reading routes every
    #: primary onto the energy-cheap slow machines and collapses in Case C
    #: (see EXPERIMENTS.md); kept as an ablation.
    machine_stage: str = "completion"


class MaxMaxScheduler:
    """Static Max-Max mapper (see module docstring)."""

    name = "Max-Max"

    def __init__(self, config: MaxMaxConfig) -> None:
        self.config = config

    def map(
        self, scenario: Scenario, schedule: Schedule | None = None
    ) -> MappingResult:
        """Map *scenario* from scratch, or finish a partially-built
        *schedule* (the session engine's final-state mapping)."""
        if schedule is None:
            schedule = Schedule(scenario, plan_cache=self.config.plan_cache)
        elif schedule.scenario is not scenario:
            raise ValueError("schedule was built for a different scenario")
        checker = FeasibilityChecker(scenario, comm_reserve=self.config.comm_reserve)
        objective = ObjectiveFunction.for_scenario(
            scenario, self.config.weights, aet_mode=self.config.aet_mode
        )
        trace = MappingTrace()

        completion_stage = self.config.machine_stage == "completion"
        if self.config.machine_stage not in ("completion", "objective"):
            raise ValueError(f"unknown machine_stage {self.config.machine_stage!r}")

        def select() -> tuple:
            """One Max-Max round: the best (subtask, version, machine)
            triplet over the ready set, plus the feasible-candidate count."""
            best_plan = None
            best_score = -float("inf")
            pool_size = 0
            ready = sorted(schedule.ready_tasks())
            for task in ready:
                for version in (PRIMARY, SECONDARY):
                    # Machine stage: the candidate's plan on each
                    # machine; under "completion" only the
                    # minimum-completion-time machine survives, under
                    # "objective" every machine competes directly.
                    stage_plan = None
                    for machine in range(scenario.n_machines):
                        trace.note_machine_scan()
                        if not checker.is_feasible(schedule, task, machine, version):
                            continue
                        plan = schedule.plan(
                            task,
                            version,
                            machine,
                            not_before=0.0,
                            insertion=self.config.insertion,
                        )
                        if not plan.feasible:
                            continue
                        pool_size += 1
                        if completion_stage:
                            if stage_plan is None or plan.finish < stage_plan.finish - 1e-12:
                                stage_plan = plan
                            continue
                        score = objective.after_plan(schedule, plan)
                        # Objective ties break toward the earliest
                        # finish (Min-Min heritage, [IbK77]), then the
                        # primary version / lowest ids via scan order.
                        if score > best_score + 1e-12 or (
                            score > best_score - 1e-12
                            and best_plan is not None
                            and plan.finish < best_plan.finish - 1e-12
                        ):
                            best_score = max(best_score, score)
                            best_plan = plan
                    if completion_stage and stage_plan is not None:
                        score = objective.after_plan(schedule, stage_plan)
                        if score > best_score + 1e-12 or (
                            score > best_score - 1e-12
                            and best_plan is not None
                            and stage_plan.finish < best_plan.finish - 1e-12
                        ):
                            best_score = max(best_score, score)
                            best_plan = stage_plan
            return best_plan, pool_size

        kernel = SchedulingKernel(schedule, None, objective)
        stopwatch = Stopwatch()
        with stopwatch:
            kernel.run_static(
                select,
                trace,
                note_ticks=True,
                note_empty_pool=True,
                record_commits=True,
            )
        schedule.perf.inc("map.runs")
        schedule.perf.inc("map.seconds", stopwatch.elapsed)
        schedule.perf.inc("tick.count", trace.ticks)
        schedule.perf.inc("pool.empty_ticks", trace.empty_pool_ticks)
        trace.perf = schedule.perf.snapshot()
        return MappingResult(
            schedule=schedule,
            trace=trace,
            heuristic_seconds=stopwatch.elapsed,
            heuristic=self.name,
            weights=self.config.weights,
        )
