"""Classic Min-Min [IbK77] — an extra reference point beyond the paper.

The paper's Max-Max baseline is "based on the general Min-Min approach";
for context we also provide the original: at each iteration, compute for
every ready subtask its minimum completion time (MCT) over all machines,
then commit the subtask whose MCT is smallest.  Versions are chosen by
affordability (primary when the battery allows, secondary otherwise), since
[IbK77] predates the version concept; energy and channel semantics are
identical to the other mappers.

This module is an **extension**: Figures 4–7 do not include Min-Min, but
the extended benches report it alongside the paper's heuristics.
"""

from __future__ import annotations

from repro.core.kernel import SchedulingKernel
from repro.core.slrh import MappingResult
from repro.sim.schedule import ExecutionPlan, Schedule
from repro.sim.trace import MappingTrace
from repro.util.timing import Stopwatch
from repro.workload.scenario import Scenario
from repro.workload.versions import PRIMARY, SECONDARY

from repro.baselines.greedy import _GREEDY_WEIGHTS


class MinMinScheduler:
    """Classic minimum-completion-time Min-Min static mapper."""

    name = "Min-Min"

    def __init__(self, insertion: bool = True) -> None:
        self.insertion = insertion

    def _best_plan_for_task(self, schedule: Schedule, task: int) -> ExecutionPlan | None:
        """Minimum-completion-time plan for *task* over all machines."""
        best: ExecutionPlan | None = None
        for machine in range(schedule.scenario.n_machines):
            for version in (PRIMARY, SECONDARY):
                plan = schedule.plan(
                    task, version, machine, not_before=0.0, insertion=self.insertion
                )
                if not plan.feasible:
                    continue
                if best is None or plan.finish < best.finish - 1e-12:
                    best = plan
                break  # affordable primary: skip secondary
        return best

    def map(
        self, scenario: Scenario, schedule: Schedule | None = None
    ) -> MappingResult:
        """Map *scenario* from scratch, or finish a partially-built
        *schedule* (the session engine's final-state mapping)."""
        if schedule is None:
            schedule = Schedule(scenario)
        elif schedule.scenario is not scenario:
            raise ValueError("schedule was built for a different scenario")
        trace = MappingTrace()

        def select() -> tuple:
            """One Min-Min round: the smallest-MCT ready subtask."""
            best: ExecutionPlan | None = None
            for task in sorted(schedule.ready_tasks()):
                plan = self._best_plan_for_task(schedule, task)
                if plan is None:
                    continue
                if best is None or plan.finish < best.finish - 1e-12:
                    best = plan
            return best, 0

        kernel = SchedulingKernel(schedule, None, None)
        stopwatch = Stopwatch()
        with stopwatch:
            kernel.run_static(select, trace, note_ticks=True)
        return MappingResult(
            schedule=schedule,
            trace=trace,
            heuristic_seconds=stopwatch.elapsed,
            heuristic=self.name,
            weights=_GREEDY_WEIGHTS,
        )
