"""Classic single-criterion mappers: OLB and MET.

Two more members of the [IbK77]-era heuristic family, included as extra
reference points beyond the paper's Max-Max baseline (both are standard
comparators in the heterogeneous-computing literature the paper builds on):

* **OLB** (opportunistic load balancing) — assign each ready subtask to the
  machine that becomes *available* earliest, ignoring execution times
  entirely.  Keeps machines busy; often poor makespan.
* **MET** (minimum execution time) — assign each ready subtask to the
  machine with the smallest ETC entry, ignoring availability.  Tends to
  overload the fastest machine.

Version policy mirrors :class:`~repro.baselines.greedy.GreedyScheduler`:
primary when the battery allows, secondary as fallback.  Tasks are taken in
topological order (ties by id), so both run in O(|T|·|M|) plans.
"""

from __future__ import annotations

from repro.baselines.greedy import _GREEDY_WEIGHTS
from repro.core.slrh import MappingResult
from repro.sim.schedule import ExecutionPlan, Schedule
from repro.sim.trace import MappingTrace
from repro.util.timing import Stopwatch
from repro.workload.scenario import Scenario
from repro.workload.versions import PRIMARY, SECONDARY


class _TopologicalMapper:
    """Shared walk: map tasks in topological order by a machine-choice rule."""

    name = "topological"

    def _choose_machine(self, schedule: Schedule, task: int) -> list[int]:
        """Machine indices in preference order for *task*."""
        raise NotImplementedError

    def map(self, scenario: Scenario) -> MappingResult:
        schedule = Schedule(scenario)
        trace = MappingTrace()
        stopwatch = Stopwatch()
        with stopwatch:
            for task in scenario.dag.topological_order:
                plan = self._first_feasible(schedule, task)
                if plan is None:
                    break
                schedule.commit(plan)
        return MappingResult(
            schedule=schedule,
            trace=trace,
            heuristic_seconds=stopwatch.elapsed,
            heuristic=self.name,
            weights=_GREEDY_WEIGHTS,
        )

    def _first_feasible(self, schedule: Schedule, task: int) -> ExecutionPlan | None:
        for machine in self._choose_machine(schedule, task):
            for version in (PRIMARY, SECONDARY):
                plan = schedule.plan(task, version, machine, insertion=False)
                if plan.feasible:
                    return plan
        return None


class OlbScheduler(_TopologicalMapper):
    """Opportunistic load balancing: earliest-available machine first."""

    name = "OLB"

    def _choose_machine(self, schedule: Schedule, task: int) -> list[int]:
        n = schedule.scenario.n_machines
        return sorted(range(n), key=lambda j: (schedule.exec_timeline[j].tail, j))


class MetScheduler(_TopologicalMapper):
    """Minimum execution time: fastest machine for this task first."""

    name = "MET"

    def _choose_machine(self, schedule: Schedule, task: int) -> list[int]:
        scenario = schedule.scenario
        n = scenario.n_machines
        return sorted(range(n), key=lambda j: (float(scenario.etc[task, j]), j))
