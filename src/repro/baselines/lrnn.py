"""Static Lagrangian-relaxation mapper (the paper's predecessor approach).

§II traces the SLRH's lineage: Luh & Hoitomt [LuH93] relaxed machine
capacity constraints with Lagrangian multipliers and repaired the (usually
infeasible) relaxed solution with list scheduling; Luh et al. [LuZ00]
adjusted the multipliers iteratively (the "Lagrangian relaxation neural
network", LRNN); and the authors' own unpublished [CaS03] applied exactly
that machinery to this ad hoc grid problem *statically*.  The paper names
two limitations — the repair step, and the inability to react to dynamic
change — that motivate the receding-horizon reformulation.

This module reconstructs that predecessor so the lineage can be measured:

1. **Relaxed problem.**  Dualise each machine's time-capacity constraint
   (Σ assigned time ≤ τ) with a price λⱼ ≥ 0.  The relaxed problem then
   splits per subtask: choose the (machine, version) minimising

   .. math::  -\\alpha\\,[v = primary]/|T| + \\beta\\,E(i,j,v)/TSE
              + \\lambda_j\\,t(i,j,v)/\\tau

   (the γ/AET term has no per-task decomposition and is handled by the
   repair step's schedule construction).

2. **Multiplier adjustment (the "neural network" iteration).**  A
   subgradient ascent on the dual: λⱼ grows where the relaxed assignment
   overloads machine *j* beyond τ and decays (toward 0) where capacity is
   slack, with a diminishing step.

3. **Repair.**  The relaxed assignment ignores precedence and channel
   capacity, so it is "typically infeasible" [LuH93]; the final solution
   list-schedules subtasks in topological order onto their chosen
   (machine, version) through the normal :class:`Schedule` machinery
   (insertion allowed), degrading to the secondary version or another
   machine when energy no longer suffices.

The result is a *static* mapper: like Max-Max it needs the whole problem
up front, and any grid change forces a full re-solve — the limitation (b)
of §II that SLRH exists to remove.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.objective import Weights
from repro.core.slrh import MappingResult
from repro.sim.schedule import Schedule
from repro.sim.trace import MappingTrace
from repro.util.timing import Stopwatch
from repro.workload.scenario import Scenario
from repro.workload.versions import PRIMARY, SECONDARY, Version


@dataclass(frozen=True)
class LrnnConfig:
    """Multiplier-iteration parameters.

    Attributes
    ----------
    weights:
        The (α, β, γ) objective point; γ only shapes the repair step.
    iterations:
        Subgradient iterations (the LRNN's settling sweeps).
    step:
        Initial subgradient step; iteration k uses ``step / k``.
    """

    weights: Weights
    iterations: int = 40
    step: float = 0.5
    #: Fraction of τ the dual treats as each machine's time capacity.
    #: The relaxed problem constrains machine *load*; the repaired schedule
    #: adds precedence and channel idle time on top, so targeting the full
    #: τ "typically represent[s] infeasible schedules" [LuH93] — the very
    #: limitation the paper cites.  A margin below 1 leaves repair room;
    #: 1.0 reproduces the naive behaviour.
    capacity_factor: float = 0.6

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.step <= 0:
            raise ValueError("step must be positive")
        if not 0 < self.capacity_factor <= 1.0:
            raise ValueError("capacity_factor must be in (0, 1]")


class LrnnScheduler:
    """Static Lagrangian-relaxation mapper (see module docstring)."""

    name = "LRNN"

    def __init__(self, config: LrnnConfig) -> None:
        self.config = config

    # -- relaxed subproblem -------------------------------------------------

    def _relaxed_choice(
        self, scenario: Scenario, prices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-task argmin of the relaxed cost; returns (machine, version)
        index arrays (version 0 = primary, 1 = secondary)."""
        w = self.config.weights
        tse = scenario.grid.total_system_energy
        tau = scenario.tau
        rates = np.array([m.compute_rate for m in scenario.grid])
        best_cost = None
        best_machine = None
        best_version = None
        for v_idx, version in enumerate((PRIMARY, SECONDARY)):
            times = scenario.etc * version.scale  # (n, m)
            energy = times * rates[np.newaxis, :]
            gain = w.alpha / scenario.n_tasks if version is PRIMARY else 0.0
            cost = -gain + w.beta * energy / tse + prices[np.newaxis, :] * times / tau
            machine = np.argmin(cost, axis=1)
            rows = np.arange(scenario.n_tasks)
            chosen = cost[rows, machine]
            if best_cost is None:
                best_cost, best_machine = chosen, machine
                best_version = np.full(scenario.n_tasks, v_idx)
            else:
                better = chosen < best_cost
                best_cost = np.where(better, chosen, best_cost)
                best_machine = np.where(better, machine, best_machine)
                best_version = np.where(better, v_idx, best_version)
        return best_machine, best_version

    def _iterate_prices(self, scenario: Scenario) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run the subgradient iteration; returns final (machine, version,
        prices)."""
        n_machines = scenario.n_machines
        rates = np.array([m.compute_rate for m in scenario.grid])
        prices = np.zeros(n_machines)
        machine = version = None
        for k in range(1, self.config.iterations + 1):
            machine, version = self._relaxed_choice(scenario, prices)
            # Subgradient of the dual: per-machine assigned time minus τ.
            load = np.zeros(n_machines)
            scales = np.where(version == 0, 1.0, SECONDARY.scale)
            times = scenario.etc[np.arange(scenario.n_tasks), machine] * scales
            np.add.at(load, machine, times)
            capacity = self.config.capacity_factor * scenario.tau
            violation = (load - capacity) / scenario.tau
            prices = np.maximum(0.0, prices + (self.config.step / k) * violation)
        del rates  # (energy enters through the relaxed cost, not the dual)
        return machine, version, prices

    # -- repair ------------------------------------------------------------------

    def map(self, scenario: Scenario) -> MappingResult:
        schedule = Schedule(scenario)
        trace = MappingTrace()
        stopwatch = Stopwatch()
        with stopwatch:
            machine, version, prices = self._iterate_prices(scenario)
            # List-scheduling repair: follow the relaxed choices in
            # topological order; fall back (secondary, then any machine in
            # ascending relaxed cost) when energy no longer allows them.
            for task in scenario.dag.topological_order:
                trace.note_tick()
                committed = False
                preferred: list[tuple[int, Version]] = [
                    (int(machine[task]), PRIMARY if version[task] == 0 else SECONDARY),
                    (int(machine[task]), SECONDARY),
                ]
                fallback_machines = sorted(
                    range(scenario.n_machines), key=lambda j: prices[j]
                )
                for j in fallback_machines:
                    preferred.append((j, PRIMARY))
                    preferred.append((j, SECONDARY))
                seen = set()
                for j, v in preferred:
                    if (j, v) in seen:
                        continue
                    seen.add((j, v))
                    plan = schedule.plan(task, v, j, insertion=True)
                    if plan.feasible:
                        schedule.commit(plan)
                        committed = True
                        break
                if not committed:
                    break  # resource exhaustion: incomplete static mapping
        return MappingResult(
            schedule=schedule,
            trace=trace,
            heuristic_seconds=stopwatch.elapsed,
            heuristic=self.name,
            weights=self.config.weights,
        )
