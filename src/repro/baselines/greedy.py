"""The "simple greedy static heuristic" and τ calibration (§III).

The paper fixed its time constraint at τ = 34 075 s "based on experiments
using a simple greedy static heuristic", choosing a value that forces load
balancing across all available machines.  We reproduce the procedure:

* :class:`GreedyScheduler` walks the DAG in topological order and assigns
  every subtask — primary version when the battery allows, secondary
  otherwise — to the machine giving the earliest completion time (classic
  minimum-completion-time greedy, insertion allowed);
* :func:`calibrate_tau` runs the greedy mapper and returns its makespan
  scaled by a slack factor.  A factor near 1.0 reproduces the paper's
  "tight" constraint that forces balancing; larger factors relax it.

At paper scale (|T| = 1024, Table 2 machines) the calibrated value lands in
the tens of thousands of seconds, consistent with the paper's 34 075 s.
"""

from __future__ import annotations

import math

from repro.core.kernel import SchedulingKernel
from repro.core.objective import Weights
from repro.core.slrh import MappingResult
from repro.sim.schedule import Schedule
from repro.sim.trace import MappingTrace
from repro.util.timing import Stopwatch
from repro.workload.scenario import Scenario
from repro.workload.versions import PRIMARY, SECONDARY

#: Placeholder weights recorded on greedy results (greedy ignores ObjFn).
_GREEDY_WEIGHTS = Weights(1.0, 0.0, 0.0)


class GreedyScheduler:
    """Minimum-completion-time greedy static mapper (see module docstring)."""

    name = "Greedy"

    def __init__(self, insertion: bool = True) -> None:
        self.insertion = insertion

    def map(
        self, scenario: Scenario, schedule: Schedule | None = None
    ) -> MappingResult:
        """Map *scenario* from scratch, or finish a partially-built
        *schedule* (the session engine's final-state mapping after grid
        events): already-mapped subtasks are skipped, everything else is
        assigned against the schedule's current calendars and budgets."""
        if schedule is None:
            schedule = Schedule(scenario)
        elif schedule.scenario is not scenario:
            raise ValueError("schedule was built for a different scenario")
        trace = MappingTrace()
        topo = iter(
            t
            for t in scenario.dag.topological_order
            if t not in schedule.assignments
        )

        def select() -> tuple:
            """MCT plan for the next subtask in topological order (``None``
            once the walk runs out of energy everywhere)."""
            task = next(topo)
            best_plan = None
            for machine in range(scenario.n_machines):
                for version in (PRIMARY, SECONDARY):
                    plan = schedule.plan(
                        task, version, machine,
                        not_before=0.0, insertion=self.insertion,
                    )
                    if not plan.feasible:
                        continue
                    if best_plan is None or plan.finish < best_plan.finish - 1e-12:
                        best_plan = plan
                    break  # primary fits: no need to consider secondary
            return best_plan, 0

        kernel = SchedulingKernel(schedule, None, None)
        stopwatch = Stopwatch()
        with stopwatch:
            kernel.run_static(select, trace, note_ticks=False)
        return MappingResult(
            schedule=schedule,
            trace=trace,
            heuristic_seconds=stopwatch.elapsed,
            heuristic=self.name,
            weights=_GREEDY_WEIGHTS,
        )


def calibrate_tau(scenario: Scenario, slack: float = 1.0) -> float:
    """Reproduce the paper's τ-selection procedure for *scenario*'s workload.

    Runs the greedy static mapper (the scenario's own τ is irrelevant to
    greedy) and returns ``slack × makespan``, rounded up to a whole clock
    cycle.  ``slack`` near 1.0 forces load balancing, as in the paper.

    Raises
    ------
    RuntimeError
        If greedy itself cannot map every subtask (the workload is
        energy-infeasible even with secondary versions).
    """
    if slack <= 0:
        raise ValueError("slack must be positive")
    result = GreedyScheduler().map(scenario)
    if not result.complete:
        raise RuntimeError(
            f"greedy mapped only {result.schedule.n_mapped}/"
            f"{scenario.n_tasks} subtasks; workload is energy-infeasible"
        )
    from repro.util.units import CYCLE_SECONDS

    raw = result.aet * slack
    return math.ceil(raw / CYCLE_SECONDS) * CYCLE_SECONDS
