"""Baseline heuristics the paper compares against (or uses for calibration).

* :mod:`~repro.baselines.maxmax` — the static **Max-Max** heuristic (§V),
  a Min-Min-family mapper [IbK77] driven by the same global objective as
  SLRH, with hole-filling insertion and per-version feasibility;
* :mod:`~repro.baselines.greedy` — the "simple greedy static heuristic" the
  paper used to select the time constraint τ = 34 075 s (§III), plus the
  :func:`~repro.baselines.greedy.calibrate_tau` helper that reproduces the
  selection procedure at any scale;
* :mod:`~repro.baselines.minmin` — the classic minimum-completion-time
  Min-Min of [IbK77], an extra reference point beyond the paper.
"""

from repro.baselines.greedy import GreedyScheduler, calibrate_tau
from repro.baselines.lrnn import LrnnConfig, LrnnScheduler
from repro.baselines.maxmax import MaxMaxConfig, MaxMaxScheduler
from repro.baselines.minmin import MinMinScheduler
from repro.baselines.simple import MetScheduler, OlbScheduler

__all__ = [
    "MaxMaxScheduler",
    "MaxMaxConfig",
    "MinMinScheduler",
    "GreedyScheduler",
    "calibrate_tau",
    "OlbScheduler",
    "MetScheduler",
    "LrnnScheduler",
    "LrnnConfig",
]
