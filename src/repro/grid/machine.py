"""Machine model (§III, Table 2).

Each grid machine is described by an immutable :class:`MachineSpec`.  The
paper's two machine classes are provided as module constants with the exact
Table 2 values:

===========  =================  =================
parameter    "fast" machines    "slow" machines
===========  =================  =================
``B(j)``     580 energy units   58 energy units
``C(j)``     0.2 units/s        0.002 units/s
``E(j)``     0.1 units/s        0.001 units/s
``BW(j)``    8 Mbit/s           4 Mbit/s
===========  =================  =================

Fast machines model a 1.7 GHz notebook (Dell Precision M60); slow machines a
400 MHz PDA (Dell Axim X5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.units import MEGABIT


class MachineClass(enum.Enum):
    """The two machine classes used in the paper's grid configurations."""

    FAST = "fast"
    SLOW = "slow"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class MachineSpec:
    """Static characterisation of one grid machine.

    Attributes
    ----------
    battery:
        Energy capacity ``B(j)`` in energy units.
    compute_rate:
        Energy consumed per second of computation, ``E(j)``.
    transmit_rate:
        Energy consumed per second of *transmission*, ``C(j)``.  Receiving is
        free (simulation assumption (a) in §III).
    bandwidth:
        Link bandwidth ``BW(j)`` in bits per second.
    machine_class:
        FAST or SLOW; drives ETC generation and case construction.
    name:
        Human-readable label, e.g. ``"fast-0"``.
    """

    battery: float
    compute_rate: float
    transmit_rate: float
    bandwidth: float
    machine_class: MachineClass
    name: str = ""

    def __post_init__(self) -> None:
        if self.battery <= 0:
            raise ValueError(f"battery must be positive, got {self.battery}")
        if self.compute_rate < 0 or self.transmit_rate < 0:
            raise ValueError("energy rates must be non-negative")
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")

    def compute_energy(self, seconds: float) -> float:
        """Energy to compute for *seconds* on this machine."""
        if seconds < 0:
            raise ValueError(f"negative duration {seconds}")
        return self.compute_rate * seconds

    def transmit_energy(self, seconds: float) -> float:
        """Energy to transmit for *seconds* from this machine."""
        if seconds < 0:
            raise ValueError(f"negative duration {seconds}")
        return self.transmit_rate * seconds

    def with_battery_scale(self, factor: float) -> "MachineSpec":
        """Return a copy with the battery capacity scaled by *factor*.

        Used by the proportional-shrink protocol: a reduced-scale study with
        |T| = n keeps every rate and ETC distribution but scales B(j) and τ
        by n/1024, preserving the paper's resource regime (fast machines
        energy-bound, slow machines time-bound).
        """
        if factor <= 0:
            raise ValueError(f"battery scale factor must be positive, got {factor}")
        return MachineSpec(
            battery=self.battery * factor,
            compute_rate=self.compute_rate,
            transmit_rate=self.transmit_rate,
            bandwidth=self.bandwidth,
            machine_class=self.machine_class,
            name=self.name,
        )

    def renamed(self, name: str) -> "MachineSpec":
        """Return a copy of this spec with a new :attr:`name`."""
        return MachineSpec(
            battery=self.battery,
            compute_rate=self.compute_rate,
            transmit_rate=self.transmit_rate,
            bandwidth=self.bandwidth,
            machine_class=self.machine_class,
            name=name,
        )


#: Table 2 "fast" machine (notebook class).
FAST_MACHINE = MachineSpec(
    battery=580.0,
    compute_rate=0.1,
    transmit_rate=0.2,
    bandwidth=8 * MEGABIT,
    machine_class=MachineClass.FAST,
    name="fast",
)

#: Table 2 "slow" machine (PDA class).
SLOW_MACHINE = MachineSpec(
    battery=58.0,
    compute_rate=0.001,
    transmit_rate=0.002,
    bandwidth=4 * MEGABIT,
    machine_class=MachineClass.SLOW,
    name="slow",
)
