"""Communication model (§III).

The time to move one bit from machine *i* to machine *j* is

.. math::  CMT(i, j) = 1 / \\min(BW(i), BW(j))

so a transfer of ``bits`` takes ``bits * CMT(i, j)`` seconds.  Transfers
between subtasks co-located on one machine are free and instantaneous
(assumption (a)); each machine can drive one outgoing and one incoming
transfer at a time (assumption (c)) — that capacity constraint lives in
:mod:`repro.sim.timeline`, not here.

Only the *sender* pays energy, at its ``C(j)`` rate (assumption (a)).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.config import GridConfig


@dataclass(frozen=True)
class NetworkModel:
    """Pairwise communication times and energies for one grid configuration.

    Precomputes the ``CMT`` matrix so the inner scheduling loops do a single
    array lookup per candidate evaluation.
    """

    grid: GridConfig

    def __post_init__(self) -> None:
        bw = np.array([m.bandwidth for m in self.grid], dtype=float)
        cmt = 1.0 / np.minimum.outer(bw, bw)
        object.__setattr__(self, "_cmt", cmt)
        object.__setattr__(self, "_worst_cmt", float(1.0 / bw.min()))

    def cmt(self, src: int, dst: int) -> float:
        """Seconds per bit from machine *src* to machine *dst* (0 if same)."""
        if src == dst:
            return 0.0
        return float(self._cmt[src, dst])

    @property
    def worst_case_cmt(self) -> float:
        """Seconds per bit across the lowest-bandwidth link in the system.

        Used by the SLRH feasibility check (§IV): before a subtask's children
        are mapped, their incoming transfers are costed as if they crossed
        this worst link.
        """
        return self._worst_cmt

    def transfer_time(self, src: int, dst: int, bits: float) -> float:
        """Seconds to move *bits* from *src* to *dst* (0 if co-located)."""
        if bits < 0:
            raise ValueError(f"negative transfer size {bits}")
        return bits * self.cmt(src, dst)

    def transfer_energy(self, src: int, dst: int, bits: float) -> float:
        """Energy drawn from *src* (the sender) to move *bits* to *dst*."""
        return self.grid[src].transmit_energy(self.transfer_time(src, dst, bits))

    def worst_case_transfer_energy(self, src: int, bits: float) -> float:
        """Energy from *src* if *bits* crossed the system's worst link.

        Co-located children would actually cost nothing; this deliberately
        over-reserves, per the paper's conservative feasibility rule.
        """
        if bits < 0:
            raise ValueError(f"negative transfer size {bits}")
        return self.grid[src].transmit_energy(bits * self._worst_cmt)
