"""Ad hoc grid substrate: machines, energy, network, and grid configurations.

The grid model follows §III of the paper: each machine *j* is characterised
by a battery capacity ``B(j)``, a computation energy rate ``E(j)``, a
communication (transmit) energy rate ``C(j)`` and a bandwidth ``BW(j)``.
Machines come in two classes — "fast" (notebook-class, Dell Precision M60)
and "slow" (PDA-class, Dell Axim X5) — whose Table 2 constants are exposed as
:data:`FAST_MACHINE` and :data:`SLOW_MACHINE`.
"""

from repro.grid.config import (
    CASE_A,
    CASE_B,
    CASE_C,
    PAPER_CASES,
    GridConfig,
    make_case,
)
from repro.grid.energy import EnergyLedger
from repro.grid.machine import (
    FAST_MACHINE,
    SLOW_MACHINE,
    MachineClass,
    MachineSpec,
)
from repro.grid.network import NetworkModel

__all__ = [
    "MachineClass",
    "MachineSpec",
    "FAST_MACHINE",
    "SLOW_MACHINE",
    "GridConfig",
    "make_case",
    "CASE_A",
    "CASE_B",
    "CASE_C",
    "PAPER_CASES",
    "NetworkModel",
    "EnergyLedger",
]
