"""Per-machine energy bookkeeping (§IV).

:class:`EnergyLedger` tracks the remaining battery ``Bp(j)`` of every machine
while a mapping is built.  Debits happen at *schedule* time — when a subtask
(or a communication) is committed, not when it would execute — matching the
paper's description: "the algorithm updated the energy levels (including
energy used for communications and subtask execution) of all machines".

The ledger also exposes the two aggregates used by the objective function:

* ``TSE`` — total system energy, Σ B(j);
* ``TEC`` — total energy consumed, Σ EC(j).
"""

from __future__ import annotations

import numpy as np

from repro.grid.config import GridConfig


class EnergyLedger:
    """Mutable energy state for one grid configuration."""

    def __init__(self, grid: GridConfig) -> None:
        self.grid = grid
        self._capacity = np.array([m.battery for m in grid], dtype=float)
        self._consumed = np.zeros(len(grid), dtype=float)
        self._tse = float(self._capacity.sum())
        # Memoised TEC (None = dirty): the objective reads TEC once per
        # candidate plan, far more often than debits invalidate it.  The
        # dirty-flag recompute keeps np.sum's exact summation order, so
        # cached and uncached runs see bit-identical aggregates.
        self._tec: float | None = 0.0

    # -- queries ----------------------------------------------------------

    def remaining(self, j: int) -> float:
        """Remaining battery ``Bp(j)`` of machine *j*."""
        return float(self._capacity[j] - self._consumed[j])

    def consumed(self, j: int) -> float:
        """Energy consumed ``EC(j)`` on machine *j* so far."""
        return float(self._consumed[j])

    @property
    def total_system_energy(self) -> float:
        """TSE = Σ_j B(j)."""
        return self._tse

    @property
    def total_energy_consumed(self) -> float:
        """TEC = Σ_j EC(j)."""
        if self._tec is None:
            self._tec = float(self._consumed.sum())
        return self._tec

    def can_afford(self, j: int, energy: float) -> bool:
        """Whether machine *j* has at least *energy* units left.

        A small relative tolerance absorbs float round-off so that a machine
        can always spend exactly its remaining budget.
        """
        return energy <= self.remaining(j) * (1 + 1e-12) + 1e-12

    # -- mutation ----------------------------------------------------------

    def debit(self, j: int, energy: float) -> None:
        """Consume *energy* units on machine *j*.

        Raises
        ------
        ValueError
            If the debit would drive the battery negative (beyond float
            tolerance) — callers must check :meth:`can_afford` first.
        """
        if energy < 0:
            raise ValueError(f"cannot debit negative energy {energy}")
        if not self.can_afford(j, energy):
            raise ValueError(
                f"machine {j} ({self.grid[j].name}) cannot afford {energy:.6g} "
                f"energy units; {self.remaining(j):.6g} remaining"
            )
        self._consumed[j] += energy
        self._tec = None

    def credit(self, j: int, energy: float) -> None:
        """Refund *energy* units on machine *j* (used when an assignment is
        rolled back, e.g. by the dynamic re-mapping engine)."""
        if energy < 0:
            raise ValueError(f"cannot credit negative energy {energy}")
        if energy > self._consumed[j] + 1e-9:
            raise ValueError(
                f"refund of {energy:.6g} exceeds consumption "
                f"{self._consumed[j]:.6g} on machine {j}"
            )
        self._consumed[j] = max(0.0, self._consumed[j] - energy)
        self._tec = None

    def snapshot(self) -> np.ndarray:
        """A copy of the per-machine consumption vector."""
        return self._consumed.copy()

    def restore(self, snapshot: np.ndarray) -> None:
        """Restore a consumption vector captured by :meth:`snapshot`."""
        if snapshot.shape != self._consumed.shape:
            raise ValueError("snapshot shape mismatch")
        self._consumed[:] = snapshot
        self._tec = None

    def copy(self) -> "EnergyLedger":
        dup = EnergyLedger(self.grid)
        dup._consumed[:] = self._consumed
        dup._tec = None
        return dup
