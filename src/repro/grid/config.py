"""Grid configurations (§III, Table 1).

The study uses three static configurations of the ad hoc grid:

=========  ================  ================
case       # fast machines   # slow machines
=========  ================  ================
Case A     2                 2
Case B     2                 1
Case C     1                 2
=========  ================  ================

Case A is the baseline; B removes one slow machine and C removes one fast
machine.  (Table 1 in the scanned paper is blank — the counts above are
recovered from Table 4's column headings, "2 fast, 2 slow" etc.)

Machines are indexed with the fast machines first, so machine 0 — the upper
bound's reference machine (§VI) — is always fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.grid.machine import FAST_MACHINE, SLOW_MACHINE, MachineClass, MachineSpec


@dataclass(frozen=True)
class GridConfig:
    """An immutable collection of machines forming one grid configuration."""

    machines: tuple[MachineSpec, ...]
    name: str = "grid"

    def __post_init__(self) -> None:
        if not self.machines:
            raise ValueError("a grid needs at least one machine")

    def __len__(self) -> int:
        return len(self.machines)

    def __iter__(self) -> Iterator[MachineSpec]:
        return iter(self.machines)

    def __getitem__(self, j: int) -> MachineSpec:
        return self.machines[j]

    @property
    def n_machines(self) -> int:
        """|M|, the number of machines in the grid."""
        return len(self.machines)

    @property
    def fast_indices(self) -> tuple[int, ...]:
        return tuple(
            j for j, m in enumerate(self.machines) if m.machine_class is MachineClass.FAST
        )

    @property
    def slow_indices(self) -> tuple[int, ...]:
        return tuple(
            j for j, m in enumerate(self.machines) if m.machine_class is MachineClass.SLOW
        )

    @property
    def total_system_energy(self) -> float:
        """TSE = Σ_j B(j) (§IV)."""
        return sum(m.battery for m in self.machines)

    @property
    def min_bandwidth(self) -> float:
        """The lowest bandwidth in the system — the worst-case link used by
        the SLRH feasibility check (§IV)."""
        return min(m.bandwidth for m in self.machines)

    def with_battery_scale(self, factor: float) -> "GridConfig":
        """Scale every machine's battery by *factor* (proportional-shrink
        protocol; see :meth:`MachineSpec.with_battery_scale`)."""
        return GridConfig(
            machines=tuple(m.with_battery_scale(factor) for m in self.machines),
            name=self.name,
        )

    def without_machine(self, j: int, name: str | None = None) -> "GridConfig":
        """Return a new grid with machine *j* removed (ad hoc loss event)."""
        if not 0 <= j < len(self.machines):
            raise IndexError(f"no machine {j} in a {len(self.machines)}-machine grid")
        remaining = self.machines[:j] + self.machines[j + 1 :]
        return GridConfig(machines=remaining, name=name or f"{self.name}-minus-{j}")


def make_case(
    n_fast: int,
    n_slow: int,
    name: str = "",
    fast_spec: MachineSpec = FAST_MACHINE,
    slow_spec: MachineSpec = SLOW_MACHINE,
) -> GridConfig:
    """Build a grid with *n_fast* fast machines followed by *n_slow* slow ones.

    Machine 0 is fast whenever ``n_fast > 0``, matching the paper's choice of
    reference machine for the upper-bound calculation.
    """
    if n_fast < 0 or n_slow < 0:
        raise ValueError("machine counts must be non-negative")
    if n_fast + n_slow == 0:
        raise ValueError("a grid needs at least one machine")
    machines = [fast_spec.renamed(f"fast-{i}") for i in range(n_fast)]
    machines += [slow_spec.renamed(f"slow-{i}") for i in range(n_slow)]
    return GridConfig(machines=tuple(machines), name=name or f"{n_fast}f{n_slow}s")


#: Case A — baseline, all machines present (2 fast, 2 slow).
CASE_A = make_case(2, 2, name="Case A")
#: Case B — one slow machine lost (2 fast, 1 slow).
CASE_B = make_case(2, 1, name="Case B")
#: Case C — one fast machine lost (1 fast, 2 slow).
CASE_C = make_case(1, 2, name="Case C")

#: The three paper configurations, keyed as in Table 1.
PAPER_CASES: dict[str, GridConfig] = {"A": CASE_A, "B": CASE_B, "C": CASE_C}
