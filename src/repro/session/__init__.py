"""Live-grid streaming sessions (ROADMAP item 3; §I, §VIII of the paper).

The paper's ad hoc grid is defined by assets that "can — and frequently
do — appear and disappear from the grid at unanticipated times", and its
§VIII names dynamic machine loss as future work.  This package makes that
churn a first-class *online* workload: a session holds one mutable
:class:`~repro.sim.schedule.Schedule` plus one persistent
:class:`~repro.core.kernel.SchedulingKernel`, consumes a stream of grid
events (task arrivals, machine losses and rejoins, clock advances) and
replans incrementally between them — never a from-scratch rebuild unless
the differential oracle mode (``kernel="rebuild"``) is forced.

Layers:

* :mod:`repro.session.events` — the event grammar
  (:class:`SessionEvent`), JSON parsing and a deterministic synthetic
  event generator for benchmarks and smoke tests;
* :mod:`repro.session.engine` — :class:`SessionEngine`, the replanning
  state machine, and :func:`run_with_events`, the offline replay that is
  the byte-identity oracle for every streamed session;
* :mod:`repro.session.codec` — NDJSON mapping *deltas*
  (:class:`DeltaEncoder` / :func:`mapping_from_delta_ndjson`): after each
  event only new, changed and retracted assignments are emitted, in the
  exact ``assignment``-line encoding of
  :func:`repro.io.serialization.iter_mapping_ndjson`, and the client
  reassembles them — in any block order — into the full final mapping.

The HTTP surface (open a session, stream events in, stream deltas out)
lives in :mod:`repro.service.sessions`; the replan-frequency study
(ΔT × H × churn-rate sweep) in ``repro.experiments churn-sweep``.
"""

from repro.session.codec import DeltaEncoder, mapping_from_delta_ndjson
from repro.session.engine import SessionEngine, SessionOutcome, run_with_events
from repro.session.events import (
    EVENT_KINDS,
    SessionEvent,
    event_from_dict,
    synthesize_events,
)

__all__ = [
    "DeltaEncoder",
    "EVENT_KINDS",
    "SessionEngine",
    "SessionEvent",
    "SessionOutcome",
    "event_from_dict",
    "mapping_from_delta_ndjson",
    "run_with_events",
    "synthesize_events",
]
