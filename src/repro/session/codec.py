"""NDJSON mapping deltas: the session's outbound wire encoding.

A live session never re-sends the whole mapping.  After each applied
event the service emits one *delta block*:

* a ``delta`` line — ``{"record": "delta", "format": 1, "scenario": ...,
  "seq": k, "cycle": c, "event": kind, "n_new": x, "n_retracted": y}`` —
  numbering the block (``seq`` is dense from 0) and advertising its size;
* ``y`` ``retract`` lines (ascending task id) for assignments that were
  announced earlier but no longer stand (rolled back by a machine loss);
* ``x`` ``assignment`` lines (ascending task id) for new or changed
  assignments, in the exact per-task encoding of
  :func:`repro.io.serialization.iter_mapping_ndjson` — the same
  :func:`~repro.io.serialization.assignment_to_dict` document through the
  same :func:`~repro.io.serialization.canonical_json_bytes`, so a client
  holding the latest line per task holds a byte-identical slice of the
  full-mapping stream.

An event that changes nothing (a quiet ``advance``) still emits its
``delta`` line with ``n_new = n_retracted = 0`` — the client can count
blocks against events.  ``close`` is followed by one ``footer`` line
(``external_debits`` + final ``n_assignments``), after which the stream
ends.

:func:`mapping_from_delta_ndjson` reassembles a stream back into a
replayed, validated :class:`~repro.sim.schedule.Schedule`.  Client reads
may arrive out of order at *block* granularity (lines within a block stay
together): blocks are sorted by ``seq`` before applying, and a gap in the
sequence is rejected rather than silently skipped.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator

from repro.io.serialization import (
    _FORMAT_VERSION,
    assignment_to_dict,
    canonical_json_bytes,
    mapping_from_dict,
)
from repro.sim.schedule import Schedule
from repro.workload.scenario import Scenario

__all__ = ["DeltaEncoder", "mapping_from_delta_ndjson"]


class DeltaEncoder:
    """Stateful announcer: diffs a live schedule against what the client
    has already been sent and yields one delta block per event.

    One encoder per session; :meth:`delta_lines` after every applied
    event, :meth:`footer_lines` once after ``close``.
    """

    def __init__(self, schedule: Schedule) -> None:
        self.schedule = schedule
        self._scenario_name = schedule.scenario.name
        # task -> (committed plan object, its announced line bytes).  The
        # plan is kept so identity ("is") proves the bytes are current —
        # a task re-mapped after a rollback gets a fresh plan object.
        self._announced: dict[int, tuple[object, bytes]] = {}
        self._seq = 0

    @property
    def seq(self) -> int:
        """The next block's sequence number (== blocks emitted so far)."""
        return self._seq

    def delta_lines(self, *, cycle: int, event: str) -> Iterator[bytes]:
        """One delta block for the schedule's current state (see module
        docstring for the layout).  Always yields at least the ``delta``
        line, even when nothing changed."""
        assignments = self.schedule.assignments
        announced = self._announced
        retracted = sorted(t for t in announced if t not in assignments)
        fresh: list[tuple[int, bytes]] = []
        for task in sorted(assignments):
            plan = assignments[task]
            known = announced.get(task)
            if known is not None and known[0] is plan:
                continue
            line = canonical_json_bytes(
                {"record": "assignment", **assignment_to_dict(plan)}
            )
            fresh.append((task, line))
            announced[task] = (plan, line)
        for task in retracted:
            del announced[task]
        yield canonical_json_bytes(
            {
                "record": "delta",
                "format": _FORMAT_VERSION,
                "scenario": self._scenario_name,
                "seq": self._seq,
                "cycle": cycle,
                "event": event,
                "n_new": len(fresh),
                "n_retracted": len(retracted),
            }
        )
        self._seq += 1
        for task in retracted:
            yield canonical_json_bytes({"record": "retract", "task": task})
        for _, line in fresh:
            yield line

    def footer_lines(self) -> Iterator[bytes]:
        """The stream-terminating ``footer`` (same shape as the full
        NDJSON encoding's, plus the final assignment count)."""
        yield canonical_json_bytes(
            {
                "record": "footer",
                "external_debits": list(self.schedule.external_debits),
                "n_assignments": len(self.schedule.assignments),
            }
        )


def _parse_blocks(
    lines: Iterable[bytes | str],
) -> tuple[list[dict], dict | None]:
    """Group raw lines into delta blocks (header doc + its member lines)
    and the footer, tolerating whole-block reordering."""
    blocks: list[dict] = []
    current: dict | None = None
    footer: dict | None = None
    for raw in lines:
        text = raw.decode("ascii") if isinstance(raw, bytes) else raw
        text = text.strip()
        if not text:
            continue
        rec = json.loads(text)
        kind = rec.get("record")
        if kind == "delta":
            if rec.get("format") != _FORMAT_VERSION:
                raise ValueError(
                    f"unsupported delta format {rec.get('format')!r}"
                )
            current = {"head": rec, "retracts": [], "assignments": []}
            blocks.append(current)
        elif kind == "retract":
            if current is None:
                raise ValueError("retract line outside any delta block")
            current["retracts"].append(int(rec["task"]))
        elif kind == "assignment":
            if current is None:
                raise ValueError("assignment line outside any delta block")
            rec.pop("record")
            current["assignments"].append(rec)
        elif kind == "footer":
            if footer is not None:
                raise ValueError("duplicate delta-stream footer")
            footer = rec
            current = None  # nothing may append to a block past the footer
        else:
            raise ValueError(f"unknown delta-stream record {kind!r}")
    return blocks, footer


def mapping_from_delta_ndjson(
    lines: Iterable[bytes | str], scenario: Scenario
) -> Schedule:
    """Reassemble a delta stream and replay it against *scenario*.

    Blocks apply in ``seq`` order regardless of arrival order; the
    sequence must be dense from 0 (a missing block is an error, not a
    silent gap).  Each block's ``n_new`` / ``n_retracted`` counts must
    match its lines, retracts must name announced tasks, and — when the
    footer is present — the final assignment count must match.  The
    result replays through :func:`repro.io.serialization.mapping_from_dict`,
    so it passes every model invariant a freshly computed mapping does.
    """
    blocks, footer = _parse_blocks(lines)
    if not blocks:
        raise ValueError("empty delta stream")
    blocks.sort(key=lambda b: b["head"]["seq"])
    scenario_name: str | None = None
    mapping: dict[int, dict] = {}
    for index, block in enumerate(blocks):
        head = block["head"]
        if head["seq"] != index:
            raise ValueError(
                f"delta stream is missing block {index} "
                f"(next seen is seq {head['seq']})"
            )
        if scenario_name is None:
            scenario_name = head.get("scenario")
        elif head.get("scenario") != scenario_name:
            raise ValueError("delta stream mixes scenarios")
        if len(block["retracts"]) != int(head["n_retracted"]):
            raise ValueError(
                f"delta block {index} advertises {head['n_retracted']} "
                f"retractions, carries {len(block['retracts'])}"
            )
        if len(block["assignments"]) != int(head["n_new"]):
            raise ValueError(
                f"delta block {index} advertises {head['n_new']} "
                f"assignments, carries {len(block['assignments'])}"
            )
        for task in block["retracts"]:
            if mapping.pop(task, None) is None:
                raise ValueError(
                    f"delta block {index} retracts task {task}, "
                    "which was never announced"
                )
        for rec in block["assignments"]:
            mapping[int(rec["task"])] = rec
    debits: list = []
    if footer is not None:
        if len(mapping) != int(footer["n_assignments"]):
            raise ValueError(
                f"delta stream reassembles to {len(mapping)} assignments, "
                f"footer advertised {footer['n_assignments']}"
            )
        debits = footer.get("external_debits", [])
    return mapping_from_dict(
        {
            "format": _FORMAT_VERSION,
            "kind": "mapping",
            "scenario": scenario_name or scenario.name,
            "assignments": [mapping[t] for t in sorted(mapping)],
            "external_debits": debits,
        },
        scenario,
    )
