"""The session event grammar.

One :class:`SessionEvent` is one line of a session's inbound NDJSON
stream.  Five kinds:

``task_arrival``
    Subtask *task* becomes visible to the grid at *cycle* (its effective
    release time moves from "held" to ``cycle × cycle_seconds``).  Only
    meaningful under a clock-driven (SLRH-family) scheduler — the static
    baselines have no notion of a task appearing mid-run.
``machine_loss``
    Machine *machine* disappears at *cycle*: its assignments (plus all
    descendants) roll back, physically-performed work is charged as sunk
    energy, and the machine goes offline.
``machine_rejoin``
    A previously lost machine returns at *cycle* with whatever battery it
    had left.
``advance``
    Pure clock movement: replan up to *cycle* with no grid change — the
    client's way of asking "what has been mapped by now?".
``close``
    Finish the session: run the heuristic to completion (or τ) and emit
    the final delta + footer.

Events carry integer cycles (the SLRH's native clock unit) and must be
applied in non-decreasing cycle order; the engine rejects time travel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.util.seeding import as_generator, stable_choice
from repro.workload.scenario import Scenario

#: Every valid ``kind`` value, in documentation order.
EVENT_KINDS = (
    "task_arrival",
    "machine_loss",
    "machine_rejoin",
    "advance",
    "close",
)

#: Kinds that require a ``task`` field / a ``machine`` field.
_TASK_KINDS = ("task_arrival",)
_MACHINE_KINDS = ("machine_loss", "machine_rejoin")


@dataclass(frozen=True)
class SessionEvent:
    """One grid event in a session's inbound stream."""

    kind: str
    cycle: int
    task: int | None = None
    machine: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown session event kind {self.kind!r}")
        if self.cycle < 0:
            raise ValueError("event cycle must be non-negative")
        if self.kind in _TASK_KINDS:
            if self.task is None:
                raise ValueError(f"{self.kind} event requires a task id")
        elif self.task is not None:
            raise ValueError(f"{self.kind} event does not take a task id")
        if self.kind in _MACHINE_KINDS:
            if self.machine is None:
                raise ValueError(f"{self.kind} event requires a machine id")
        elif self.machine is not None:
            raise ValueError(f"{self.kind} event does not take a machine id")

    def to_dict(self) -> dict:
        """Wire form: the inbound NDJSON line's document."""
        doc: dict = {"event": self.kind, "cycle": self.cycle}
        if self.task is not None:
            doc["task"] = self.task
        if self.machine is not None:
            doc["machine"] = self.machine
        return doc


def event_from_dict(doc: dict) -> SessionEvent:
    """Parse one inbound NDJSON document into a :class:`SessionEvent`.

    Raises ``ValueError`` on any malformed document — unknown kind,
    missing/extra ids, non-integer fields — so the service can answer a
    bad line with a 400 instead of corrupting the session.
    """
    if not isinstance(doc, dict):
        raise ValueError("session event must be a JSON object")
    kind = doc.get("event")
    if not isinstance(kind, str):
        raise ValueError("session event requires a string 'event' field")
    cycle = doc.get("cycle")
    if not isinstance(cycle, int) or isinstance(cycle, bool):
        raise ValueError("session event requires an integer 'cycle' field")
    task = doc.get("task")
    if task is not None and (not isinstance(task, int) or isinstance(task, bool)):
        raise ValueError("session event 'task' must be an integer")
    machine = doc.get("machine")
    if machine is not None and (
        not isinstance(machine, int) or isinstance(machine, bool)
    ):
        raise ValueError("session event 'machine' must be an integer")
    extra = set(doc) - {"event", "cycle", "task", "machine"}
    if extra:
        raise ValueError(f"unknown session event fields {sorted(extra)}")
    return SessionEvent(kind=kind, cycle=cycle, task=task, machine=machine)


def validate_events(
    events: Iterable[SessionEvent], scenario: Scenario
) -> list[SessionEvent]:
    """Check *events* against *scenario*'s task/machine ranges and the
    non-decreasing cycle discipline; returns them as a list."""
    out: list[SessionEvent] = []
    cursor = 0
    for ev in events:
        if ev.cycle < cursor:
            raise ValueError(
                f"{ev.kind} at cycle {ev.cycle} arrives after cycle {cursor}"
            )
        cursor = ev.cycle
        if ev.task is not None and not 0 <= ev.task < scenario.n_tasks:
            raise IndexError(f"no task {ev.task}")
        if ev.machine is not None and not 0 <= ev.machine < scenario.n_machines:
            raise IndexError(f"no machine {ev.machine}")
        out.append(ev)
    return out


def synthesize_events(
    scenario: Scenario,
    *,
    seed: int,
    n_events: int,
    max_cycle: int,
    arrival_fraction: float = 0.5,
    pending: Iterable[int] | None = None,
) -> tuple[tuple[int, ...], list[SessionEvent]]:
    """Deterministically generate a mixed event stream for *scenario*.

    Returns ``(pending, events)``: the task ids held back for mid-session
    arrival, and a cycle-sorted event list (losses/rejoins alternate per
    machine so the stream is always legal, arrivals cover every pending
    task, ``advance`` fills the remainder) ending with a ``close``.  Same
    seed → same stream, byte for byte — the loadgen, the CI smoke job and
    the benchmark all replay identical sessions.

    ``pending`` selects the held tasks explicitly; by default the last
    ``round(arrival_fraction × n_events)``-capped slice of the sink-most
    task ids is held (children of held tasks would deadlock the replay if
    a *parent* stayed unreleased while its child arrived, so holding a
    suffix of the topological order is always safe).
    """
    if n_events < 1:
        raise ValueError("n_events must be positive")
    if max_cycle < 1:
        raise ValueError("max_cycle must be positive")
    rng = as_generator(seed)
    if pending is None:
        n_arrivals = min(
            int(round(arrival_fraction * n_events)), scenario.n_tasks // 2
        )
        held = tuple(scenario.dag.topological_order[-n_arrivals:]) if n_arrivals else ()
    else:
        held = tuple(pending)
        n_arrivals = len(held)
    kinds: list[str] = ["task_arrival"] * n_arrivals
    while len(kinds) < n_events - 1:
        kinds.append(str(stable_choice(rng, ("machine_loss", "advance"))))
    rng.shuffle(kinds)
    cycles = sorted(int(rng.integers(1, max_cycle)) for _ in range(len(kinds)))
    arrivals = iter(sorted(held))
    offline: list[int] = []
    events: list[SessionEvent] = []
    for kind, cycle in zip(kinds, cycles):
        if kind == "task_arrival":
            events.append(
                SessionEvent(kind=kind, cycle=cycle, task=next(arrivals))
            )
        elif kind == "machine_loss":
            # Alternate loss/rejoin per stream position: lose a random
            # online machine, or bring back the longest-lost one when
            # fewer than two are still up (the grid must keep working).
            online = [
                j for j in range(scenario.n_machines) if j not in offline
            ]
            if len(online) > 2 and (not offline or float(rng.random()) < 0.6):
                machine = int(stable_choice(rng, online))
                offline.append(machine)
                events.append(
                    SessionEvent(kind="machine_loss", cycle=cycle, machine=machine)
                )
            elif offline:
                machine = offline.pop(0)
                events.append(
                    SessionEvent(kind="machine_rejoin", cycle=cycle, machine=machine)
                )
            else:
                events.append(SessionEvent(kind="advance", cycle=cycle))
        else:
            events.append(SessionEvent(kind="advance", cycle=cycle))
    events.append(SessionEvent(kind="close", cycle=max_cycle))
    return held, events
