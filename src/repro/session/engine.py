"""The session replanning state machine and its offline oracle.

:class:`SessionEngine` owns one mutable :class:`~repro.sim.schedule.Schedule`
and — for the SLRH family — one persistent
:class:`~repro.core.kernel.SchedulingKernel` that lives across every
event.  Each applied event becomes a *precise delta* against the kernel's
candidate pool (``note_arrival`` / ``note_rejoin`` / ``note_disturbance``)
and every replanning segment runs with ``rebase=False``, so the pool is
never rebuilt from scratch unless the differential oracle mode
(``SlrhConfig(kernel="rebuild")``) is forced.  Mappings are byte-identical
across all three kernel modes and to :func:`repro.sim.churn.run_with_churn`
on the same loss/join timeline — pinned by ``tests/test_session.py``.

Scheduler families differ in *when* planning happens:

* **SLRH-1/2/3** (clock-driven): the heuristic runs segment-by-segment
  between events, exactly like the churn replay; ``task_arrival`` events
  move a held task's release time from ``math.inf`` to its arrival
  instant and the pool keeps every entry the arrival provably did not
  touch.
* **Static baselines** (Max-Max, Min-Min, greedy): clockless — a task
  "arriving" mid-run has no meaning, so arrivals are rejected; losses,
  rejoins and advances mutate the grid state and one *final-state
  mapping* runs at close against whatever machines remain online (with
  sunk energy already debited).

:func:`run_with_events` replays a recorded event stream offline through
the same engine — it IS the oracle a streamed HTTP session is compared
against, and the benchmark's from-scratch arm (``persistent=False``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Sequence

import math

from repro.core.slrh import MappingResult, SlrhScheduler
from repro.obs.log import enabled as _obs_enabled
from repro.obs.log import get_logger
from repro.obs.spans import NULL_SPAN, NULL_TRACER, NullTracer, Tracer
from repro.sim.churn import ChurnRecord, _merge_trace, _rollback_machine
from repro.sim.schedule import Schedule
from repro.session.events import SessionEvent, validate_events
from repro.util.units import CYCLE_SECONDS
from repro.workload.scenario import Scenario

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.trace import MappingTrace

_LOG = get_logger("session")


@dataclass(frozen=True)
class SessionOutcome:
    """What a closed session produced."""

    final: MappingResult
    records: tuple[ChurnRecord, ...]
    n_events: int

    @property
    def total_rolled_back(self) -> int:
        return sum(len(r.rolled_back) for r in self.records)


class SessionEngine:
    """Apply a stream of :class:`SessionEvent` to one live schedule.

    Parameters
    ----------
    scenario:
        The workload + grid being scheduled.
    scheduler:
        Any registry heuristic (see :mod:`repro.heuristics`).  SLRH-family
        schedulers replan incrementally between events; static baselines
        map once at close.
    pending:
        Task ids *held back* at session open — they are invisible to the
        heuristic (release time ``math.inf``) until a ``task_arrival``
        event names them.  Requires an SLRH-family scheduler.
    persistent:
        ``True`` (default) keeps one kernel across all segments, fed by
        precise event deltas (``rebase=False``).  ``False`` builds a
        fresh kernel for every segment — the per-event from-scratch arm
        of the replan-frequency benchmark.  Mappings are byte-identical
        either way.
    tracer:
        Optional span tracer; each applied event is wrapped in a
        ``session.event`` span and the usual map/tick spans nest below.
    """

    def __init__(
        self,
        scenario: Scenario,
        scheduler: Any,
        *,
        pending: Iterable[int] = (),
        persistent: bool = True,
        tracer: Tracer | NullTracer | None = None,
    ) -> None:
        self.scenario = scenario
        self.scheduler = scheduler
        self.tracer = NULL_TRACER if tracer is None else tracer
        self._is_slrh = isinstance(scheduler, SlrhScheduler)
        self.pending = set(pending)
        for task in self.pending:
            if not 0 <= task < scenario.n_tasks:
                raise IndexError(f"no task {task}")
        if self.pending and not self._is_slrh:
            raise ValueError(
                "held tasks (pending arrivals) require a clock-driven "
                "SLRH-family scheduler; static baselines have no clock"
            )
        config = getattr(scheduler, "config", None)
        plan_cache = getattr(config, "plan_cache", True)
        self.cycle_seconds = getattr(config, "cycle_seconds", CYCLE_SECONDS)
        self.schedule = Schedule(scenario, plan_cache=plan_cache)
        for task in self.pending:
            self.schedule.set_release(task, math.inf)
        self.kernel = (
            scheduler.make_kernel(self.schedule)
            if self._is_slrh and persistent
            else None
        )
        self.persistent = persistent
        self.cursor = 0
        self.closed = False
        self.records: list[ChurnRecord] = []
        self._trace: "MappingTrace | None" = None
        self._seconds = 0.0
        self._last_result: MappingResult | None = None
        self._outcome: SessionOutcome | None = None
        self._n_events = 0

    @property
    def outcome(self) -> SessionOutcome:
        if self._outcome is None:
            raise RuntimeError("session is not closed yet")
        return self._outcome

    def apply(self, event: SessionEvent) -> ChurnRecord | None:
        """Apply one event: replan up to its cycle, then mutate the grid.

        Returns the :class:`~repro.sim.churn.ChurnRecord` for a
        ``machine_loss`` (rolled-back tasks + sunk energy), ``None`` for
        every other kind.  Raises on out-of-order cycles, unknown ids,
        double losses/rejoins, arrivals of non-held tasks, arrivals under
        a static scheduler, and anything after ``close``.
        """
        if self.closed:
            raise ValueError("session is closed")
        if event.cycle < self.cursor:
            raise ValueError(
                f"{event.kind} at cycle {event.cycle} arrives after "
                f"cycle {self.cursor}"
            )
        tracer = self.tracer
        span = (
            tracer.span("session.event", kind=event.kind, cycle=event.cycle)
            if tracer.enabled
            else NULL_SPAN
        )
        with span:
            record = self._apply_locked(event)
        self._n_events += 1
        self.schedule.perf.inc("session.events")
        if _obs_enabled():
            _LOG.event(
                "session.event",
                kind=event.kind,
                cycle=event.cycle,
                task=event.task,
                machine=event.machine,
                n_mapped=self.schedule.n_mapped,
                rolled_back=len(record.rolled_back) if record else 0,
            )
        return record

    def _apply_locked(self, event: SessionEvent) -> ChurnRecord | None:
        kind = event.kind
        if kind == "close":
            self._close()
            return None
        if kind == "task_arrival":
            task = event.task
            if task not in self.pending:
                raise ValueError(
                    f"task {task} is not held for arrival "
                    "(not in the session's pending set)"
                )
            self._advance_to(event.cycle)
            self.pending.discard(task)
            self.schedule.set_release(task, event.cycle * self.cycle_seconds)
            if self.kernel is not None:
                self.kernel.note_arrival(task)
            return None
        if kind == "machine_loss":
            machine = event.machine
            if not 0 <= machine < self.scenario.n_machines:
                raise IndexError(f"no machine {machine}")
            if machine in self.schedule.offline:
                raise ValueError(f"machine {machine} is already offline")
            self._advance_to(event.cycle)
            loss_time = event.cycle * self.cycle_seconds
            rolled = _rollback_machine(self.schedule, machine, loss_time)
            self.schedule.set_offline(machine, True)
            if self.kernel is not None:
                self.kernel.note_disturbance()
            record = ChurnRecord(
                event=event,
                rolled_back=rolled.rolled_back,
                sunk_energy=rolled.sunk_energy,
            )
            self.records.append(record)
            if rolled.rolled_back:
                self.schedule.perf.inc(
                    "session.rolled_back", len(rolled.rolled_back)
                )
            return record
        if kind == "machine_rejoin":
            machine = event.machine
            if not 0 <= machine < self.scenario.n_machines:
                raise IndexError(f"no machine {machine}")
            if machine not in self.schedule.offline:
                raise ValueError(f"machine {machine} is already online")
            self._advance_to(event.cycle)
            self.schedule.set_offline(machine, False)
            if self.kernel is not None:
                self.kernel.note_rejoin(machine)
            self.records.append(
                ChurnRecord(event=event, rolled_back=(), sunk_energy=0.0)
            )
            return None
        # kind == "advance" (the event grammar admits nothing else)
        self._advance_to(event.cycle)
        return None

    def _advance_to(self, cycle: int) -> None:
        """Run the heuristic over the segment ``[cursor, cycle)``.

        Static baselines are clockless: the cursor just moves (all their
        planning happens in :meth:`_close`).
        """
        if not self._is_slrh:
            self.cursor = cycle
            return
        result = self.scheduler.map(
            self.scenario,
            schedule=self.schedule,
            start_cycle=self.cursor,
            stop_cycle=cycle,
            kernel=self.kernel,
            rebase=not self.persistent,
            tracer=self.tracer if self.tracer.enabled else None,
        )
        self._absorb(result)
        self.cursor = cycle

    def _close(self) -> None:
        """Run the heuristic to completion (or τ) and seal the session."""
        if self._is_slrh:
            result = self.scheduler.map(
                self.scenario,
                schedule=self.schedule,
                start_cycle=self.cursor,
                kernel=self.kernel,
                rebase=not self.persistent,
                tracer=self.tracer if self.tracer.enabled else None,
            )
        else:
            # Final-state mapping: the statics see the grid as the events
            # left it (offline machines, sunk-energy debits) and map the
            # whole workload in one shot.
            result = self.scheduler.map(self.scenario, schedule=self.schedule)
        self._absorb(result)
        self.closed = True
        final = MappingResult(
            schedule=self.schedule,
            trace=self._trace,
            heuristic_seconds=self._seconds,
            heuristic=result.heuristic,
            weights=result.weights,
        )
        self._outcome = SessionOutcome(
            final=final,
            records=tuple(self.records),
            n_events=self._n_events + 1,  # +1: the close being applied now
        )
        if _obs_enabled():
            _LOG.event(
                "session.final",
                heuristic=result.heuristic,
                n_events=self._outcome.n_events,
                n_mapped=self.schedule.n_mapped,
                success=final.success,
                rolled_back=self._outcome.total_rolled_back,
            )

    def close(self) -> SessionOutcome:
        """Convenience: apply a ``close`` at the current cursor."""
        if not self.closed:
            self.apply(SessionEvent(kind="close", cycle=self.cursor))
        return self.outcome

    def _absorb(self, result: MappingResult) -> None:
        self._seconds += result.heuristic_seconds
        self._trace = _merge_trace(self._trace, result.trace)
        self._last_result = result


def run_with_events(
    scenario: Scenario,
    scheduler: Any,
    events: Sequence[SessionEvent],
    *,
    pending: Iterable[int] | None = None,
    persistent: bool = True,
    tracer: Tracer | NullTracer | None = None,
) -> SessionOutcome:
    """Replay *events* offline through a :class:`SessionEngine`.

    This is the byte-identity oracle for streamed sessions: the HTTP
    surface drives the exact same engine, so a recorded stream replayed
    here must yield the identical final mapping.  Events are applied in
    cycle order (stable for equal cycles); a stream that does not end in
    ``close`` is closed at its last cycle.  ``pending`` defaults to
    exactly the tasks named by the stream's ``task_arrival`` events.
    """
    ordered = validate_events(
        sorted(events, key=lambda e: e.cycle), scenario
    )
    if pending is None:
        pending = {ev.task for ev in ordered if ev.kind == "task_arrival"}
    engine = SessionEngine(
        scenario,
        scheduler,
        pending=pending,
        persistent=persistent,
        tracer=tracer,
    )
    for ev in ordered:
        engine.apply(ev)
        if engine.closed:
            break
    return engine.close()
