"""The paper's primary contribution: the SLRH resource manager family.

* :mod:`~repro.core.objective` — the Lagrangian-style global objective
  ``ObjFn(α,β,γ) = α·T100/|T| − β·TEC/TSE + γ·AET/τ`` on the weight simplex;
* :mod:`~repro.core.feasibility` — the conservative candidate feasibility
  rule (parents mapped + worst-case communication energy reserve);
* :mod:`~repro.core.pool` — candidate pool U construction, per-subtask
  version selection and objective ordering;
* :mod:`~repro.core.slrh` — the clock-driven SLRH loop and its three
  variants (SLRH-1/2/3);
* :mod:`~repro.core.lagrangian` — adaptive multiplier adjustment (the
  paper's stated future work, implemented as a subgradient outer loop).
"""

from repro.core.feasibility import FeasibilityChecker
from repro.core.lagrangian import AdaptiveWeightController, adaptive_slrh
from repro.core.objective import ObjectiveFunction, Weights
from repro.core.pool import Candidate, build_candidate_pool
from repro.core.slrh import (
    SLRH1,
    SLRH2,
    SLRH3,
    MappingResult,
    SlrhConfig,
    SlrhScheduler,
)

__all__ = [
    "Weights",
    "ObjectiveFunction",
    "FeasibilityChecker",
    "Candidate",
    "build_candidate_pool",
    "SlrhConfig",
    "SlrhScheduler",
    "SLRH1",
    "SLRH2",
    "SLRH3",
    "MappingResult",
    "AdaptiveWeightController",
    "adaptive_slrh",
]
