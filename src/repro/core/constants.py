"""Shared numeric tolerances for the scheduling core.

One named epsilon instead of scattered ``1e-9`` literals: every gate that
compares simulated times or release clocks (the pool's release gate, the
kernel's sleep/wake predicates, τ acceptance, horizon eligibility) must
use the *same* tolerance, or two sides of one comparison can disagree by
a rounding error — the kernel once woke machines one event early because
its sleep computation subtracted the epsilon the release gate *adds*
(see ``SchedulingKernel._serve_machine``).

This module is a leaf: it imports nothing, so it is safely importable
from ``repro.sim`` while ``repro.core`` is still initialising.
"""

#: Absolute tolerance for simulated-time and release-clock comparisons.
EPSILON: float = 1e-9
