"""Candidate pool U: construction, version selection, ordering (§IV).

For one target machine at one clock tick the SLRH:

1. filters the unmapped subtasks through the
   :class:`~repro.core.feasibility.FeasibilityChecker` (secondary-version
   energy rule) to form the pool U;
2. evaluates the global objective for **both** versions of every pool
   member — this requires a tentative :class:`~repro.sim.schedule.ExecutionPlan`
   per (task, version) so TEC and AET impacts are exact — and keeps only the
   version with the higher objective (ties favour the primary, since equal
   objective at lower resource commitment never loses T100);
3. orders the pool by resulting objective value, maximum first.

The SLRH then walks the ordered pool and maps the first candidate whose
start time falls inside the receding horizon.

Observability (both opt-in, both zero-cost when off): the schedule's span
tracer wraps pool construction (``pool.build``) and per-candidate version
selection (``select``), and a :class:`repro.obs.ledger.DecisionLedger`
passed by the caller records every filtered-out candidate — release-time
misses, rule-(b) energy failures (with the joule shortfall) and losing
versions (with the score margin).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.constants import EPSILON
from repro.core.feasibility import FeasibilityChecker
from repro.core.objective import ObjectiveFunction
from repro.obs.ledger import (
    ENERGY_INFEASIBLE,
    LOST_ON_SCORE,
    NOT_RELEASED,
    DecisionLedger,
)
from repro.obs.spans import NULL_SPAN
from repro.sim.schedule import ExecutionPlan, Schedule
from repro.workload.versions import SECONDARY, Version


@dataclass(frozen=True)
class Candidate:
    """One pool entry: a subtask with its chosen version and tentative plan."""

    task: int
    plan: ExecutionPlan
    score: float

    @property
    def version(self) -> Version:
        return self.plan.version


def select_candidate(
    schedule: Schedule,
    objective: ObjectiveFunction,
    task: int,
    plans: Iterable[ExecutionPlan],
) -> Candidate | None:
    """Score the feasible members of *plans* and return the best as a
    :class:`Candidate` (``None`` if no plan is feasible).

    This is the version-selection rule shared by every pool construction
    path — the from-scratch build below and the incremental re-scoring in
    :mod:`repro.core.kernel` — so a candidate's score and version choice
    are computed by exactly one piece of float arithmetic everywhere.
    """
    best: Candidate | None = None
    for plan in plans:
        if not plan.feasible:
            continue
        score = objective.after_plan(schedule, plan)
        # Explicit tie rule: on equal score prefer the version that counts
        # toward T100 (the primary) — equal objective at lower resource
        # commitment never loses T100.  Spelled out (rather than relying on
        # plan_versions yielding the primary first) so a reordering of the
        # evaluation loop cannot silently flip version choices.
        if (
            best is None
            or score > best.score
            or (
                score == best.score
                and plan.version.counts_toward_t100
                and not best.version.counts_toward_t100
            )
        ):
            best = Candidate(task=task, plan=plan, score=score)
    return best


def evaluate_versions(
    schedule: Schedule,
    objective: ObjectiveFunction,
    task: int,
    machine: int,
    not_before: float,
    insertion: bool = False,
    ledger: DecisionLedger | None = None,
) -> Candidate | None:
    """Plan both versions of *task* on *machine*; return the better one.

    Plans that are energy-infeasible at commit granularity (e.g. the primary
    version no longer fits the battery, or a parent's machine cannot afford
    the transmit energy) are dropped; returns ``None`` when neither version
    survives.  With *ledger*, the dropped version (infeasible or outscored)
    is recorded with its reason and margin.
    """
    best: Candidate | None = None
    tracer = schedule.tracer
    if not tracer.enabled and ledger is None:
        # Disabled-observability fast path: this function runs once per
        # ready task per machine per tick, so even a no-op span call (the
        # kwargs dict alone) and loser bookkeeping are measurable.  Keep
        # this loop free of both; the byte-identity tests in
        # tests/test_obs.py pin that both paths select the same versions.
        return select_candidate(
            schedule,
            objective,
            task,
            schedule.plan_versions(
                task, machine, not_before=not_before, insertion=insertion
            ),
        )
    # Every plan that loses the selection is kept (a dethroned best included)
    # and recorded against the *final* winner, so a task with more than two
    # plans leaves a complete rejection trail in the ledger.
    losers: list[tuple[ExecutionPlan, float]] = []
    span = tracer.span("select", task=task, machine=machine) if tracer.enabled else NULL_SPAN
    with span:
        for plan in schedule.plan_versions(
            task, machine, not_before=not_before, insertion=insertion
        ):
            if not plan.feasible:
                if ledger is not None:
                    ledger.reject(
                        clock=not_before,
                        task=task,
                        machine=machine,
                        version=plan.version.value,
                        reason=ENERGY_INFEASIBLE,
                        detail=plan.reason,
                    )
                continue
            score = objective.after_plan(schedule, plan)
            # Same tie rule as the fast path above — keep the two in sync.
            if (
                best is None
                or score > best.score
                or (
                    score == best.score
                    and plan.version.counts_toward_t100
                    and not best.version.counts_toward_t100
                )
            ):
                if best is not None:
                    losers.append((best.plan, best.score))
                best = Candidate(task=task, plan=plan, score=score)
            else:
                losers.append((plan, score))
    if ledger is not None and best is not None:
        for lost_plan, lost_score in losers:
            ledger.reject(
                clock=not_before,
                task=task,
                machine=machine,
                version=lost_plan.version.value,
                reason=LOST_ON_SCORE,
                margin=best.score - lost_score,
                score=lost_score,
                detail=(
                    f"version {lost_plan.version.value} outscored by "
                    f"{best.version.value} ({lost_score:.6g} vs {best.score:.6g})"
                ),
            )
    return best


def build_candidate_pool(
    schedule: Schedule,
    checker: FeasibilityChecker,
    objective: ObjectiveFunction,
    machine: int,
    not_before: float,
    tasks: Iterable[int] | None = None,
    insertion: bool = False,
    ledger: DecisionLedger | None = None,
) -> list[Candidate]:
    """Build the ordered candidate pool U for *machine* at time *not_before*.

    Parameters
    ----------
    tasks:
        The subtasks to consider; defaults to the schedule's ready set
        (unmapped, all parents mapped).  SLRH-3 passes an explicit set when
        it re-pools after each assignment.
    insertion:
        Passed through to planning (Max-Max hole-filling uses ``True``).
    ledger:
        Optional decision ledger; every candidate filtered out of U is
        recorded with its reason code and margin (see
        :mod:`repro.obs.ledger`).

    Returns the pool ordered by objective value, maximum first; ties broken
    by task id for determinism.
    """
    if tasks is None:
        tasks = schedule.ready_tasks()
    scenario = schedule.scenario
    pool: list[Candidate] = []
    tracer = schedule.tracer
    span = (
        tracer.span("pool.build", machine=machine, clock=not_before)
        if tracer.enabled
        else NULL_SPAN
    )
    with span:
        with schedule.perf.timer("phase.pool_seconds"):
            for task in tasks:
                # A subtask the grid has not yet *seen* (release time in the
                # future) cannot enter the pool — the dynamic heuristic has no
                # advance knowledge of it (§IV).  The schedule's live release
                # list is the source of truth: streamed arrivals move it.
                release = schedule.release(task)
                if release > not_before + EPSILON:
                    if ledger is not None:
                        ledger.reject(
                            clock=not_before,
                            task=task,
                            machine=machine,
                            reason=NOT_RELEASED,
                            margin=release - not_before,
                            detail=f"released at {release:.6g}s",
                        )
                    continue
                if not checker.is_feasible(schedule, task, machine, SECONDARY):
                    # Only a genuine rule-(b) failure is ledger-worthy; a
                    # mapped task or unmapped parents (possible when callers
                    # pass an explicit task set) is not a rejection.
                    if ledger is not None and task not in schedule.assignments and all(
                        p in schedule.assignments
                        for p in scenario.dag.parents[task]
                    ):
                        required = checker.required_energy(task, machine, SECONDARY)
                        available = schedule.available_energy(machine)
                        ledger.reject(
                            clock=not_before,
                            task=task,
                            machine=machine,
                            version=SECONDARY.value,
                            reason=ENERGY_INFEASIBLE,
                            margin=max(0.0, required - available),
                            detail=(
                                f"rule (b): secondary-version reserve "
                                f"{required:.6g} J exceeds available "
                                f"{available:.6g} J"
                            ),
                        )
                    continue
                candidate = evaluate_versions(
                    schedule,
                    objective,
                    task,
                    machine,
                    not_before,
                    insertion=insertion,
                    ledger=ledger,
                )
                if candidate is not None:
                    pool.append(candidate)
            pool.sort(key=lambda c: (-c.score, c.task))
    schedule.perf.inc("pool.builds")
    schedule.perf.inc("pool.members", len(pool))
    return pool
