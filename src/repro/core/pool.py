"""Candidate pool U: construction, version selection, ordering (§IV).

For one target machine at one clock tick the SLRH:

1. filters the unmapped subtasks through the
   :class:`~repro.core.feasibility.FeasibilityChecker` (secondary-version
   energy rule) to form the pool U;
2. evaluates the global objective for **both** versions of every pool
   member — this requires a tentative :class:`~repro.sim.schedule.ExecutionPlan`
   per (task, version) so TEC and AET impacts are exact — and keeps only the
   version with the higher objective (ties favour the primary, since equal
   objective at lower resource commitment never loses T100);
3. orders the pool by resulting objective value, maximum first.

The SLRH then walks the ordered pool and maps the first candidate whose
start time falls inside the receding horizon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.feasibility import FeasibilityChecker
from repro.core.objective import ObjectiveFunction
from repro.sim.schedule import ExecutionPlan, Schedule
from repro.workload.versions import SECONDARY


@dataclass(frozen=True)
class Candidate:
    """One pool entry: a subtask with its chosen version and tentative plan."""

    task: int
    plan: ExecutionPlan
    score: float

    @property
    def version(self):
        return self.plan.version


def evaluate_versions(
    schedule: Schedule,
    objective: ObjectiveFunction,
    task: int,
    machine: int,
    not_before: float,
    insertion: bool = False,
) -> Candidate | None:
    """Plan both versions of *task* on *machine*; return the better one.

    Plans that are energy-infeasible at commit granularity (e.g. the primary
    version no longer fits the battery, or a parent's machine cannot afford
    the transmit energy) are dropped; returns ``None`` when neither version
    survives.
    """
    best: Candidate | None = None
    for plan in schedule.plan_versions(
        task, machine, not_before=not_before, insertion=insertion
    ):
        if not plan.feasible:
            continue
        score = objective.after_plan(schedule, plan)
        # Explicit tie rule: on equal score prefer the version that counts
        # toward T100 (the primary) — equal objective at lower resource
        # commitment never loses T100.  Spelled out (rather than relying on
        # plan_versions yielding the primary first) so a reordering of the
        # evaluation loop cannot silently flip version choices.
        if (
            best is None
            or score > best.score
            or (
                score == best.score
                and plan.version.counts_toward_t100
                and not best.version.counts_toward_t100
            )
        ):
            best = Candidate(task=task, plan=plan, score=score)
    return best


def build_candidate_pool(
    schedule: Schedule,
    checker: FeasibilityChecker,
    objective: ObjectiveFunction,
    machine: int,
    not_before: float,
    tasks: Iterable[int] | None = None,
    insertion: bool = False,
) -> list[Candidate]:
    """Build the ordered candidate pool U for *machine* at time *not_before*.

    Parameters
    ----------
    tasks:
        The subtasks to consider; defaults to the schedule's ready set
        (unmapped, all parents mapped).  SLRH-3 passes an explicit set when
        it re-pools after each assignment.
    insertion:
        Passed through to planning (Max-Max hole-filling uses ``True``).

    Returns the pool ordered by objective value, maximum first; ties broken
    by task id for determinism.
    """
    if tasks is None:
        tasks = schedule.ready_tasks()
    scenario = schedule.scenario
    pool: list[Candidate] = []
    with schedule.perf.timer("phase.pool_seconds"):
        for task in tasks:
            # A subtask the grid has not yet *seen* (release time in the
            # future) cannot enter the pool — the dynamic heuristic has no
            # advance knowledge of it (§IV).
            if scenario.release(task) > not_before + 1e-9:
                continue
            if not checker.is_feasible(schedule, task, machine, SECONDARY):
                continue
            candidate = evaluate_versions(
                schedule, objective, task, machine, not_before, insertion=insertion
            )
            if candidate is not None:
                pool.append(candidate)
        pool.sort(key=lambda c: (-c.score, c.task))
    schedule.perf.inc("pool.builds")
    schedule.perf.inc("pool.members", len(pool))
    return pool
