"""The scheduling kernel: one event-driven core under every heuristic.

Every mapper in this codebase used to carry its own copy of the outer
loop — the SLRH variants each re-implemented the per-tick machine scan,
the static baselines their round loop, and the churn engine drove the
whole thing segment-by-segment.  :class:`SchedulingKernel` now owns that
spine: the clock advance, the machine scan order, the per-machine serve
loop (:meth:`run`) for the clock-driven SLRH family, and the clockless
round loop (:meth:`run_static`) for the static baselines.  The SLRH
variants collapse into :class:`TickPolicy` values answering "how many
commits per machine per tick, and do we re-score between commits".

Incremental candidate pools
---------------------------
The paper's loop (§IV) rebuilds the candidate pool U from scratch for
every (tick, machine).  Profiling shows most ticks are stalls: nothing
became eligible, nothing changed, yet every ready task is re-planned and
re-scored.  :class:`CandidatePool` instead maintains one pool entry per
(machine, task) and re-plans only entries dirtied by an **event**:

* a commit — touches the target machine's execution/in-channel calendars
  and energy, every sending machine's out-channel and energy, and the
  parents' machines' reserves (tracked by per-machine touch counters);
* a parent assignment changing (the schedule's per-task parent epoch);
* the tick moving ``not_before`` — an entry survives the clock advance
  only when its certificates prove a fresh plan would be byte-identical
  (its data-ready floor dominates both clocks and every planned transfer
  starts at/after the new clock, mirroring the plan cache's rules);
* churn (offline/online flips, rollbacks, external debits) — handled
  wholesale by :meth:`CandidatePool.invalidate_all`, which :meth:`run`
  performs on entry so a kernel persisted across churn segments re-bases
  against whatever happened in between.

Clean entries are *reused*: their plans verbatim, their scores too when
the global aggregates (T100, TEC, AET) are unchanged, or re-scored with
the exact arithmetic of a fresh evaluation when a commit moved them
(float ordering is preserved by recomputing, never by adjusting).  The
``pool.reuse_hits`` / ``pool.invalidations`` perf counters expose the
delta rate.

On top of per-entry reuse the kernel sleeps whole machines: when a serve
commits nothing, every pool member was outside the receding horizon, and
absent events (which wake all machines) the pool can only change when the
horizon reaches the earliest data-ready time or an unreleased task
arrives — both computable, so the machine sleeps until that tick and the
stall ticks in between cost an availability check instead of a pool
build.  Data-ready times are nondecreasing in the planning clock (gap
searches are monotone in their lower bound), so a sleep can only ever be
*conservative* — waking early is harmless, and the serve that follows
re-derives eligibility from scratch.

Columnar pools
--------------
The default ``columnar`` mode (``REPRO_KERNEL=columnar``) keeps exactly
the :class:`CandidatePool` maintenance discipline but stores the pool
state in flat parallel arrays (:class:`repro.core.columnar.ColumnarPool`)
— certificate checks and re-scoring become index arithmetic, candidate
ordering a single stable argsort over the score column — and lets
:meth:`SchedulingKernel.run` fast-forward runs of stall ticks (every
machine unavailable or asleep) in one tight loop.  Both replicate the
object path's float arithmetic operation-for-operation, so mappings,
trace counters and pool counters are byte-identical across all modes.

Differential oracles
--------------------
``REPRO_KERNEL=incremental`` keeps the delta-maintained object pools and
``REPRO_KERNEL=rebuild`` (or ``SlrhConfig(kernel=...)``) the original
from-scratch pool construction as reference implementations; mappings
are byte-identical across the three modes for every heuristic (pinned by
``tests/test_kernel.py`` and the ``kernel-differential`` CI job).  The
decision ledger records per-tick rejection history that only exists when
pools are actually rebuilt, so ledgered runs always use the rebuild path
— observability never changes the mapping, and the hot path never pays
for it.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Callable

from repro.core.columnar import ColumnarPool
from repro.core.constants import EPSILON
from repro.core.feasibility import FeasibilityChecker
from repro.core.objective import ObjectiveFunction
from repro.core.pool import Candidate, build_candidate_pool, select_candidate
from repro.obs.ledger import ENERGY_INFEASIBLE, LOST_ON_SCORE, OUTSIDE_HORIZON
from repro.obs.spans import NULL_SPAN, NULL_TRACER, NullTracer, Tracer
from repro.sim.clock import SimulationClock
from repro.sim.schedule import ExecutionPlan, Schedule
from repro.sim.trace import MappingTrace
from repro.workload.versions import SECONDARY

__all__ = [
    "CandidatePool",
    "ColumnarPool",
    "KERNEL_MODES",
    "SchedulingKernel",
    "TickPolicy",
    "resolve_kernel_mode",
]

#: The three kernel modes: ``columnar`` (flat-array pools, the default),
#: ``incremental`` (delta-maintained object pools) and ``rebuild``
#: (from-scratch pools — the differential oracle).
KERNEL_MODES = ("columnar", "incremental", "rebuild")


def resolve_kernel_mode(override: str | None = None, *, ledger: bool = False) -> str:
    """The kernel mode to run: *override* if given, else ``$REPRO_KERNEL``,
    else ``columnar``.  A decision ledger forces ``rebuild`` — its
    per-tick rejection records only exist when pools are actually rebuilt
    (recording never changes the mapping either way).
    """
    if ledger:
        return "rebuild"
    mode = override if override is not None else os.environ.get("REPRO_KERNEL", "")
    mode = str(mode).strip().lower()
    if mode in ("", "columnar", "col", "flat"):
        return "columnar"
    if mode in ("incremental", "inc", "delta", "1", "on"):
        return "incremental"
    if mode in ("rebuild", "full", "oracle", "0", "off"):
        return "rebuild"
    raise ValueError(
        f"unknown kernel mode {mode!r}; expected one of {', '.join(KERNEL_MODES)}"
    )


@dataclass(frozen=True)
class TickPolicy:
    """What an SLRH variant does within one (tick, machine) serve.

    ``max_commits`` caps assignments per machine per tick (``None`` =
    unlimited); ``refresh`` says what happens to the pool between commits:
    ``"none"`` stops after the cap, ``"replan"`` keeps draining the *same*
    stale pool (start times re-planned, scores and ordering not — SLRH-2),
    ``"rebuild"`` re-derives the pool after every commit (SLRH-3).
    """

    max_commits: int | None
    refresh: str  # "none" | "replan" | "rebuild"

    def __post_init__(self) -> None:
        if self.refresh not in ("none", "replan", "rebuild"):
            raise ValueError(f"unknown refresh policy {self.refresh!r}")
        if self.max_commits is not None and self.max_commits < 1:
            raise ValueError("max_commits must be >= 1 (or None)")


# Pool-entry states: a scored candidate, a task whose tentative plans are
# all energy-infeasible, and a rule-(b) reject (never planned at all).
_CANDIDATE, _NO_VERSION, _RULE_B = 0, 1, 2


class _PoolEntry:
    """One delta-maintained pool slot for a (machine, task) pair.

    Cleanliness certificates: the task's parent epoch, the touch-counter
    stamps of every machine the entry's plans read (target + parents'
    machines — exactly the set a commit can move), and — for entries that
    hold plans — the clock rule under which a later ``not_before`` provably
    yields byte-identical plans.  ``_RULE_B`` and ``_NO_VERSION`` verdicts
    are clock-independent (they hinge on energy state only), so they skip
    the clock rule.
    """

    __slots__ = (
        "kind", "parent_epoch", "dep_machines", "dep_stamps",
        "nb", "data_ready", "min_comm_start", "pair", "cand", "token",
    )


class CandidatePool:
    """Incrementally maintained candidate pools, one per machine.

    :meth:`pool_for` materialises the same ordered pool that
    :func:`repro.core.pool.build_candidate_pool` would build from scratch
    — pinned by the Hypothesis equivalence test in ``tests/test_kernel.py``
    — re-planning only dirtied entries.  The owner must report every
    commit via :meth:`note_commit` and call :meth:`invalidate_all` after
    any other mutation (rollbacks, offline flips, external debits).
    """

    def __init__(
        self,
        schedule: Schedule,
        checker: FeasibilityChecker,
        objective: ObjectiveFunction,
    ) -> None:
        self.schedule = schedule
        self.checker = checker
        self.objective = objective
        n_machines = schedule.scenario.n_machines
        self._entries: list[dict[int, _PoolEntry]] = [{} for _ in range(n_machines)]
        # Per-machine event counters: bumped for every machine a commit
        # touches (calendars, energy, reserves).  Entry stamps against
        # these prove "nothing my plans read has moved".
        self._touch = [0] * n_machines
        # Aggregate state (T100, TEC, AET) the current scores were computed
        # at; scores are recomputed — with fresh-path arithmetic — whenever
        # it moves, since every commit shifts every candidate's score.
        self._agg: tuple[int, float, float] | None = None
        self._token = 0

    def invalidate_all(self) -> None:
        """Drop every entry — the big hammer for events without a precise
        delta (churn offline/online, rollbacks, external debits)."""
        for per_machine in self._entries:
            per_machine.clear()
        self._agg = None

    def note_release(self, task: int) -> None:
        """A streamed arrival moved *task*'s release time: retire its
        entries.  (A held task is release-gated out of every pool, so none
        should exist — clearing is defensive symmetry with
        :meth:`note_commit`.)  Entries for other tasks never read a
        neighbour's release, so they survive untouched — this is the
        precise delta that lets a session keep its pool across arrivals."""
        for per_machine in self._entries:
            per_machine.pop(task, None)

    def note_machine_return(self, machine: int) -> None:
        """A lost machine rejoined the grid: give it a fresh touch epoch.

        Bumping the counter dirties every surviving entry whose plans read
        *machine* (their stamps no longer match), and clearing the
        machine's own entry table forces its pools to be re-derived from
        the post-rejoin grid instead of any pre-loss leftovers.  Without
        the bump a rejoin is invisible to the certificate scheme — touch
        counters only ever move on commits — so stale entries could
        survive the offline window (pinned against the rebuild oracle by
        ``tests/test_session.py``)."""
        self._touch[machine] += 1
        self._entries[machine].clear()
        self._agg = None

    def note_commit(self, plan: ExecutionPlan) -> None:
        """Record a commit's footprint: bump the touch counter of every
        machine it mutated and retire the committed task's entries."""
        schedule = self.schedule
        touched = {plan.machine}
        for p in schedule.scenario.dag.parents[plan.task]:
            touched.add(schedule.assignments[p].machine)
        touch = self._touch
        for j in touched:
            touch[j] += 1
        for per_machine in self._entries:
            per_machine.pop(plan.task, None)

    def _deps(self, task: int, machine: int) -> tuple[int, ...]:
        schedule = self.schedule
        return tuple(
            sorted(
                {machine}
                | {
                    schedule.assignments[p].machine
                    for p in schedule.scenario.dag.parents[task]
                }
            )
        )

    def pool_for(
        self, machine: int, not_before: float, tracer: Tracer | NullTracer = NULL_TRACER
    ) -> tuple[list[Candidate], float | None]:
        """The ordered pool U for *machine* at *not_before*, plus the
        earliest release time among ready-but-unreleased tasks (``None``
        when there is none) — the kernel's wake-up hint."""
        schedule = self.schedule
        perf = schedule.perf
        agg = schedule.aggregate_state()
        if agg != self._agg:
            self._agg = agg
            self._token += 1
        token = self._token
        entries = self._entries[machine]
        touch = self._touch
        epochs = schedule.parent_epochs()
        objective = self.objective
        checker = self.checker
        pool: list[Candidate] = []
        min_release: float | None = None
        reused = invalidated = 0
        span = (
            tracer.span("pool.delta", machine=machine, clock=not_before)
            if tracer.enabled
            else NULL_SPAN
        )
        release_times = schedule.release_times_view()
        with span, perf.timer("phase.pool_seconds"):
            for task in schedule.ready_tasks():
                release = release_times[task]
                if release > not_before + EPSILON:
                    if min_release is None or release < min_release:
                        min_release = release
                    continue
                entry = entries.get(task)
                if entry is not None and entry.parent_epoch == epochs[task]:
                    clean = True
                    stamps = entry.dep_stamps
                    for k, j in enumerate(entry.dep_machines):
                        if touch[j] != stamps[k]:
                            clean = False
                            break
                    if clean and entry.kind == _CANDIDATE and not_before != entry.nb:
                        # The clock moved.  The stored plans survive only if
                        # a fresh computation provably matches: the data-ready
                        # floor dominates both clocks (so data_ready — and the
                        # execution slot behind it — is unchanged) and every
                        # planned transfer starts at/after the new clock (gap
                        # searches are monotone in their lower bound, so a
                        # still-legal earliest train stays earliest).
                        if not (
                            not_before > entry.nb
                            and entry.data_ready > entry.nb
                            and entry.data_ready >= not_before
                            and entry.min_comm_start >= not_before
                        ):
                            clean = False
                else:
                    clean = False
                if clean:
                    reused += 1
                    if entry.kind == _CANDIDATE:
                        if entry.token != token:
                            # Aggregates moved: re-score both versions with
                            # the fresh path's exact arithmetic and re-run
                            # the selection — a changed makespan can flip
                            # the version choice, and float ordering must
                            # be recomputed, never patched.
                            entry.cand = select_candidate(
                                schedule, objective, task, entry.pair
                            )
                            entry.token = token
                        pool.append(entry.cand)
                    continue
                invalidated += 1
                if not checker.is_feasible(schedule, task, machine, SECONDARY):
                    entry = _PoolEntry()
                    entry.kind = _RULE_B
                    entry.parent_epoch = epochs[task]
                    entry.dep_machines = self._deps(task, machine)
                    entry.dep_stamps = tuple(touch[j] for j in entry.dep_machines)
                    entry.pair = None
                    entry.cand = None
                    entries[task] = entry
                    continue
                pair = schedule.plan_versions(task, machine, not_before=not_before)
                cand = select_candidate(schedule, objective, task, pair)
                entry = _PoolEntry()
                entry.kind = _CANDIDATE if cand is not None else _NO_VERSION
                entry.parent_epoch = epochs[task]
                entry.dep_machines = self._deps(task, machine)
                entry.dep_stamps = tuple(touch[j] for j in entry.dep_machines)
                entry.nb = not_before
                entry.data_ready = pair[0].data_ready
                entry.min_comm_start = min(
                    (c.start for c in pair[0].comms), default=math.inf
                )
                entry.pair = pair
                entry.cand = cand
                entry.token = token
                entries[task] = entry
                if cand is not None:
                    pool.append(cand)
            pool.sort(key=lambda c: (-c.score, c.task))
        perf.inc("pool.builds")
        perf.inc("pool.members", len(pool))
        if reused:
            perf.inc("pool.reuse_hits", reused)
        if invalidated:
            perf.inc("pool.invalidations", invalidated)
        return pool, min_release


class SchedulingKernel:
    """The shared scheduling core (see module docstring).

    One kernel serves one :class:`~repro.sim.schedule.Schedule`; the churn
    engine keeps a kernel alive across segments and every :meth:`run`
    re-bases the incremental pool against whatever happened in between.
    """

    def __init__(
        self,
        schedule: Schedule,
        checker: FeasibilityChecker | None,
        objective: ObjectiveFunction | None,
        *,
        mode: str = "incremental",
        machine_order: str = "index",
        decision_latency_seconds: float = 0.0,
    ) -> None:
        if mode not in KERNEL_MODES:
            raise ValueError(f"unknown kernel mode {mode!r}")
        if machine_order not in ("index", "battery", "round_robin"):
            raise ValueError(f"unknown machine_order {machine_order!r}")
        self.schedule = schedule
        self.checker = checker
        self.objective = objective
        self.mode = mode
        self.machine_order = machine_order
        self.latency = decision_latency_seconds
        n_machines = schedule.scenario.n_machines
        # The index-order scan list is immutable and shared across ticks
        # (round-robin rotates it, battery re-sorts it per tick).
        self._order = list(range(n_machines))
        if checker is not None and mode != "rebuild":
            pool_cls = ColumnarPool if mode == "columnar" else CandidatePool
            self.pool = pool_cls(schedule, checker, objective)
        else:
            self.pool = None
        # Per-machine sleep state, stored as the *raw* event times the last
        # serve observed (earliest unreleased-task release, earliest pool
        # data-ready) rather than a precomputed wake tick: the asleep test
        # then evaluates the release gate and the horizon rule with exactly
        # the arithmetic the serve itself would use, so a machine can never
        # wake an event early (or late) to float rounding.  -inf = must
        # serve (every event resets both to -inf); +inf = unconstrained.
        self._wake_release = [-math.inf] * n_machines
        self._wake_ready = [-math.inf] * n_machines

    # -- clock-driven mode (the SLRH family) --------------------------------

    def _scan_order(self, tick_index: int) -> list[int]:
        if self.machine_order == "battery":
            schedule = self.schedule
            return sorted(
                self._order, key=lambda j: (-schedule.available_energy(j), j)
            )
        if self.machine_order == "round_robin":
            offset = tick_index % len(self._order)
            return self._order[offset:] + self._order[:offset]
        return self._order

    def _wake_all(self) -> None:
        wake_release = self._wake_release
        wake_ready = self._wake_ready
        for j in range(len(wake_release)):
            wake_release[j] = -math.inf
            wake_ready[j] = -math.inf

    def _asleep(self, j: int, clock: SimulationClock) -> bool:
        """Whether machine *j* provably has nothing startable at *clock*:
        its earliest unreleased task still fails the pool's release gate
        AND its earliest data-ready time is still past the horizon — the
        same comparisons, with the same tolerance, the serve would make."""
        return (
            self._wake_release[j] > (clock.now + self.latency) + EPSILON
            and self._wake_ready[j] > clock.horizon_end + EPSILON
        )

    # -- precise event deltas (streaming sessions) --------------------------
    #
    # A caller that mutates the schedule between runs normally relies on
    # the unconditional re-base at run entry (invalidate_all + wake).  The
    # session engine instead reports each event through one of these hooks
    # and runs with ``rebase=False``, keeping every pool entry the event
    # provably did not touch — mappings stay byte-identical to the rebuild
    # oracle (pinned by tests/test_session.py), only the reuse rate moves.

    def note_arrival(self, task: int) -> None:
        """A streamed task arrival: its release moved, nothing else did.
        Existing entries never read another task's release, so the pool
        keeps them; sleeping machines must re-check their release gates."""
        if self.pool is not None:
            self.pool.note_release(task)
            self._wake_all()

    def note_rejoin(self, machine: int) -> None:
        """A lost machine rejoined: fresh touch epoch for it (see
        ``note_machine_return``), and everyone wakes to reconsider it."""
        if self.pool is not None:
            self.pool.note_machine_return(machine)
            self._wake_all()

    def note_disturbance(self) -> None:
        """An event with no precise delta (machine loss: rollbacks,
        offline flip, external debits) — the big hammer."""
        if self.pool is not None:
            self.pool.invalidate_all()
            self._wake_all()

    def run(
        self,
        policy: TickPolicy,
        clock: SimulationClock,
        trace: MappingTrace,
        *,
        max_ticks: int,
        rebase: bool = True,
        stop_cycle: int | None = None,
        tracer=NULL_TRACER,
    ) -> None:
        """Drive the clock loop until completion, τ, *stop_cycle* or the
        tick cap — mutating *clock*, the schedule and *trace* in place."""
        schedule = self.schedule
        scenario = schedule.scenario
        if rebase and self.pool is not None:
            # Re-base against anything that happened outside a run (churn
            # rollbacks, offline flips, external debits) — events inside a
            # run flow through note_commit.  Streaming sessions pass
            # ``rebase=False`` after reporting each event through the
            # note_* hooks above, keeping the pool warm across segments.
            self.pool.invalidate_all()
            self._wake_all()
        tracing = tracer.enabled
        # Stall ticks (every machine unavailable or asleep) mutate nothing
        # but the clock and three trace counters, so the columnar mode
        # consumes them in a tight arithmetic loop instead of the full
        # scan machinery.  Guarded to the untraced, unledgered hot path;
        # the loop evaluates the exact same availability/sleep predicates
        # per tick, so counters and mappings are byte-identical.
        fast = (
            self.mode == "columnar"
            and self.pool is not None
            and not tracing
            and trace.ledger is None
        )
        tick_index = 0
        while tick_index < max_ticks:
            if stop_cycle is not None and clock.cycle >= stop_cycle:
                break
            if fast:
                consumed, stop = self._fast_forward(
                    clock, trace, max_ticks - tick_index, stop_cycle, scenario.tau
                )
                tick_index += consumed
                if stop:
                    break
                if consumed:
                    continue
                if tick_index >= max_ticks:
                    break
            trace.note_tick()
            tick_span = (
                tracer.span("kernel.tick", tick=tick_index, clock=clock.now)
                if tracing
                else NULL_SPAN
            )
            with tick_span:
                for j in self._scan_order(tick_index):
                    trace.note_machine_scan()
                    if not schedule.machine_available(j, clock.now):
                        continue
                    if self.pool is not None and self._asleep(j, clock):
                        # Asleep: the last serve proved nothing can start
                        # before the stored event times absent events, and
                        # any event would have reset them.  A from-scratch
                        # serve here would commit nothing — count the stall
                        # exactly as the rebuild path does.
                        trace.note_empty_pool()
                        continue
                    made = self._serve_machine(j, policy, clock, trace, tracer)
                    if made == 0:
                        trace.note_empty_pool()
                    if schedule.is_complete:
                        break
            if schedule.is_complete:
                break
            clock.tick()
            tick_index += 1
            if clock.exceeded(scenario.tau):
                break

    def _fast_forward(
        self,
        clock: SimulationClock,
        trace: MappingTrace,
        budget: int,
        stop_cycle: int | None,
        tau: float,
    ) -> tuple[int, bool]:
        """Consume consecutive stall ticks — ticks where every machine is
        either unavailable or asleep — in one tight loop; returns (ticks
        consumed, whether the run must stop).  Mirrors the main loop
        exactly: per consumed tick it advances the clock once and accounts
        one tick, one scan per machine, and one empty-pool stall per
        available (asleep) machine.  Nothing else can change during a
        stall: commits are the only in-run mutations, and a stall tick by
        definition commits nothing.
        """
        schedule = self.schedule
        offline = schedule.offline
        latency = self.latency
        wake_release = self._wake_release
        wake_ready = self._wake_ready
        n_machines = len(wake_release)
        # Hoisted availability facts: a machine is unavailable while its
        # last committed execution ends after the clock (timeline rule);
        # calendars cannot move during a stall.  Offline machines never
        # contribute either way, so the scan list drops them up front.
        mach = [
            (tl.last_busy_end(), wake_release[j], wake_ready[j])
            for j, tl in enumerate(schedule.exec_timeline)
            if j not in offline
        ]
        # Inlined SimulationClock arithmetic — now / horizon_end / tick /
        # exceeded are affine in the cycle counter; evaluating the same
        # expressions on hoisted fields keeps every float identical while
        # dropping five attribute/property calls per stall tick.
        cycle = clock.cycle
        dt = clock.delta_t_cycles
        cs = clock.cycle_seconds
        hc = clock.horizon_cycles
        consumed = 0
        empty_total = 0
        stop = False
        while consumed < budget:
            if stop_cycle is not None and cycle >= stop_cycle:
                break
            now = cycle * cs
            gate = (now + latency) + EPSILON
            horizon = (cycle + hc) * cs + EPSILON
            now_eps = now + EPSILON
            empty = 0
            stalled = True
            for busy_end_j, wr_j, wd_j in mach:
                if busy_end_j > now_eps:
                    continue
                if wr_j > gate and wd_j > horizon:
                    empty += 1
                    continue
                stalled = False
                break
            if not stalled:
                break
            consumed += 1
            empty_total += empty
            cycle += dt
            if cycle * cs > tau + 1e-9:
                stop = True
                break
        clock.cycle = cycle
        if consumed:
            trace.ticks += consumed
            trace.machine_scans += consumed * n_machines
            trace.empty_pool_ticks += empty_total
        return consumed, stop

    def _build_pool(
        self,
        machine: int,
        not_before: float,
        trace: MappingTrace,
        tracer: Tracer | NullTracer,
    ) -> tuple[list[Candidate], float | None]:
        if self.pool is None:
            return (
                build_candidate_pool(
                    self.schedule,
                    self.checker,
                    self.objective,
                    machine,
                    not_before=not_before,
                    ledger=trace.ledger,
                ),
                None,
            )
        return self.pool.pool_for(machine, not_before, tracer)

    def _serve_machine(
        self,
        machine: int,
        policy: TickPolicy,
        clock: SimulationClock,
        trace: MappingTrace,
        tracer: Tracer | NullTracer,
    ) -> int:
        """One (tick, machine) serve under *policy*; returns commits made."""
        schedule = self.schedule
        not_before = clock.now + self.latency
        made = 0
        pool, min_release = self._build_pool(machine, not_before, trace, tracer)
        while pool:
            replan = made > 0 and policy.refresh == "replan"
            if not self._commit_first_startable(pool, clock, trace, replan=replan):
                break
            made += 1
            if schedule.is_complete:
                break
            if policy.max_commits is not None and made >= policy.max_commits:
                break
            if policy.refresh == "rebuild":
                pool, min_release = self._build_pool(machine, not_before, trace, tracer)
            elif policy.refresh == "none":
                break
        if made == 0 and self.pool is not None:
            # Nothing started: every pool member's data-ready time is past
            # the horizon, and data-ready times only grow with the clock.
            # Absent events the machine cannot commit before the horizon
            # reaches the earliest of them (or an unreleased ready task
            # arrives) — store the raw event times and sleep until either
            # gate opens.  (An earlier version precomputed a wake *tick* by
            # subtracting the latency and the gate epsilon; the extra
            # subtractions could round below the true gate threshold and
            # wake the machine one event early, burning a pool build on a
            # tick where the release gate was still closed — pinned by
            # tests/test_kernel.py::TestSleepGate.)
            self._wake_release[machine] = (
                min_release if min_release is not None else math.inf
            )
            ready = math.inf
            for candidate in pool:
                at = candidate.plan.data_ready
                if at < ready:
                    ready = at
            self._wake_ready[machine] = ready
        return made

    def _commit_first_startable(
        self,
        pool: list[Candidate],
        clock: SimulationClock,
        trace: MappingTrace,
        replan: bool = False,
    ) -> bool:
        """Walk the ordered pool; commit the first candidate whose start
        falls inside the horizon.  With *replan*, each candidate's plan is
        recomputed first (SLRH-2's stale-pool walk).

        When the trace carries a decision ledger, every pool member that
        does *not* win this walk is recorded: horizon misses with their
        overshoot, replan infeasibilities, and — once a winner commits —
        the rest of the pool as ``lost_on_score`` against it (this is the
        per-tick "machine rejected" record the ``explain`` CLI surfaces).
        """
        schedule = self.schedule
        objective = self.objective
        ledger = trace.ledger
        # The columnar pool carries a fused single-version replan that is
        # byte-identical for every committable plan but skips the reason
        # strings of dead ones — usable exactly when no ledger listens.
        fused_replan = (
            getattr(self.pool, "replan", None)
            if replan and ledger is None
            else None
        )
        for index, candidate in enumerate(pool):
            plan = candidate.plan
            if replan:
                if schedule.is_mapped(candidate.task):
                    continue
                if fused_replan is not None:
                    plan = fused_replan(
                        candidate.task,
                        candidate.version,
                        plan.machine,
                        clock.now + self.latency,
                    )
                else:
                    plan = schedule.plan(
                        candidate.task,
                        candidate.version,
                        plan.machine,
                        not_before=clock.now + self.latency,
                    )
                if not plan.feasible:
                    if ledger is not None:
                        ledger.reject(
                            clock=clock.now,
                            task=candidate.task,
                            machine=plan.machine,
                            version=plan.version.value,
                            reason=ENERGY_INFEASIBLE,
                            detail=f"stale-pool replan: {plan.reason}",
                        )
                    continue
            # §IV: horizon eligibility is judged on the "earliest possible
            # starting time ... given precedence and communication
            # requirements" — the machine's own queue does not disqualify a
            # candidate.  (For SLRH-1 the target machine is idle, so the two
            # notions coincide; for SLRH-2/3 this is what lets one machine
            # take several assignments in a single tick.)
            if not clock.within_horizon(plan.data_ready):
                if ledger is not None:
                    ledger.reject(
                        clock=clock.now,
                        task=candidate.task,
                        machine=plan.machine,
                        version=plan.version.value,
                        reason=OUTSIDE_HORIZON,
                        margin=plan.data_ready - clock.horizon_end,
                        score=candidate.score,
                        detail=(
                            f"data ready {plan.data_ready:.6g}s is past the "
                            f"horizon end {clock.horizon_end:.6g}s"
                        ),
                    )
                continue
            tracer = schedule.tracer
            span = (
                tracer.span(
                    "commit",
                    task=plan.task,
                    machine=plan.machine,
                    version=plan.version.value,
                )
                if tracer.enabled
                else NULL_SPAN
            )
            with span:
                schedule.commit(plan)
                trace.record_commit(
                    clock=clock.now,
                    plan=plan,
                    objective=objective.of_schedule(schedule),
                    pool_size=len(pool),
                    t100=schedule.t100,
                    tec=schedule.total_energy_consumed,
                    aet=schedule.makespan,
                )
            if self.pool is not None:
                self.pool.note_commit(plan)
                # A commit moves aggregates, energy and the ready set —
                # every machine must be (re)considered from here on.
                self._wake_all()
            if ledger is not None:
                # Everyone below the winner lost this machine this walk.
                for loser in pool[index + 1:]:
                    if schedule.is_mapped(loser.task):
                        continue
                    ledger.reject(
                        clock=clock.now,
                        task=loser.task,
                        machine=loser.plan.machine,
                        version=loser.version.value,
                        reason=LOST_ON_SCORE,
                        margin=candidate.score - loser.score,
                        score=loser.score,
                        winner=candidate.task,
                        detail=(
                            f"task {candidate.task} won machine "
                            f"{loser.plan.machine} ({candidate.score:.6g} vs "
                            f"{loser.score:.6g})"
                        ),
                    )
            return True
        return False

    # -- clockless mode (the static baselines) ------------------------------

    def run_static(
        self,
        select: Callable[[], tuple[ExecutionPlan | None, int]],
        trace: MappingTrace,
        *,
        note_ticks: bool = True,
        note_empty_pool: bool = False,
        record_commits: bool = False,
    ) -> None:
        """Drive a static (clockless) heuristic's round loop.

        *select* is a zero-argument callable returning ``(plan, pool_size)``
        — the round's winning plan (``None`` stops the loop) and, when
        *record_commits*, the candidate count to stamp on the trace record.
        The kernel owns the loop, the commit, and the trace bookkeeping;
        the heuristic owns only its selection rule.
        """
        schedule = self.schedule
        while not schedule.is_complete:
            if note_ticks:
                trace.note_tick()
            plan, pool_size = select()
            if plan is None:
                if note_empty_pool:
                    trace.note_empty_pool()
                break
            schedule.commit(plan)
            if record_commits:
                trace.record_commit(
                    clock=0.0,
                    plan=plan,
                    objective=self.objective.of_schedule(schedule),
                    pool_size=pool_size,
                    t100=schedule.t100,
                    tec=schedule.total_energy_consumed,
                    aet=schedule.makespan,
                )
