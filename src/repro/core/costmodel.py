"""Analytic cost model of the SLRH heuristics.

The paper motivates SLRH partly by its suitability for "mapping directly
onto hardware such as DSPs or FPGAs" (§II) and reports heuristic execution
times as a first-class result (Figure 6).  This module provides the
analytic counterpart: closed-form estimates of the dominant operation
counts per run, parameterised by the quantities a deployment engineer
knows in advance (|T|, |M|, τ, ΔT), plus a calibration hook that fits the
per-operation constant from one measured run.

Model
-----
Let ``ticks ≈ min(τ/ΔT·cycle, needed)`` and let the pool at a typical tick
hold ``w`` candidates (the DAG's ready-width).  Per tick, each *available*
machine builds a pool: ``w`` feasibility checks and ``2·w`` tentative plans
(both versions), each plan costing O(parents) channel-slot searches.  The
variants differ only in pools per (machine, tick):

* SLRH-1 — exactly one;
* SLRH-2 — one pool, plus up to pool-size re-plans (no re-evaluation);
* SLRH-3 — one pool per assignment made in the tick.

The model deliberately ignores log-factors in the calendar searches — at
the paper's scales the plan evaluations dominate by orders of magnitude,
which :func:`validate_against_trace` verifies empirically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.slrh import MappingResult
from repro.workload.scenario import Scenario


@dataclass(frozen=True)
class CostEstimate:
    """Predicted operation counts for one heuristic run."""

    ticks: float
    machine_scans: float
    pool_builds: float
    plan_evaluations: float
    #: Predicted wall-clock seconds (only when a calibration constant is
    #: supplied; ``nan`` otherwise).
    seconds: float

    def summary(self) -> dict:
        return {
            "ticks": self.ticks,
            "machine_scans": self.machine_scans,
            "pool_builds": self.pool_builds,
            "plan_evaluations": self.plan_evaluations,
            "seconds": self.seconds,
        }


def _expected_ready_width(scenario: Scenario) -> float:
    """Mean number of simultaneously-ready subtasks ≈ |T| / depth."""
    return max(1.0, scenario.n_tasks / scenario.dag.depth)


def estimate_cost(
    scenario: Scenario,
    variant: str = "SLRH-1",
    delta_t_cycles: int = 10,
    cycle_seconds: float = 0.1,
    seconds_per_plan: float = float("nan"),
) -> CostEstimate:
    """Predict the operation counts of running *variant* on *scenario*.

    ``seconds_per_plan`` converts plan evaluations to wall-clock seconds;
    obtain it from :func:`calibrate_seconds_per_plan`.
    """
    if variant not in ("SLRH-1", "SLRH-2", "SLRH-3"):
        raise KeyError(f"unknown SLRH variant {variant!r}")
    n, m = scenario.n_tasks, scenario.n_machines
    width = _expected_ready_width(scenario)

    # The run lasts until all tasks are mapped; with one assignment per
    # machine-visit the mapping rate is bounded by machine turnover —
    # approximate the tick count by the makespan budget.
    ticks = math.ceil(scenario.tau / (delta_t_cycles * cycle_seconds))
    # Machines are available only when idle: a machine executing a mean
    # task is unavailable for ~exec/ΔT consecutive ticks, so the number of
    # *productive* pool builds is ≈ number of assignments, while scans
    # continue every tick.
    machine_scans = ticks * m
    if variant == "SLRH-1":
        pool_builds = float(n)  # one successful build per assignment
    elif variant == "SLRH-2":
        pool_builds = float(n)  # stale pool reused; re-plans instead
    else:  # SLRH-3 rebuilds after every assignment
        pool_builds = float(n) * 1.5  # plus terminating empty rebuilds
    # Each build evaluates both versions of every pool member; SLRH-2 adds
    # up to pool-size single-version re-plans per drained pool.
    plans_per_build = 2.0 * width
    plan_evaluations = pool_builds * plans_per_build
    if variant == "SLRH-2":
        plan_evaluations += float(n) * width

    return CostEstimate(
        ticks=float(ticks),
        machine_scans=float(machine_scans),
        pool_builds=pool_builds,
        plan_evaluations=plan_evaluations,
        seconds=plan_evaluations * seconds_per_plan,
    )


def calibrate_seconds_per_plan(result: MappingResult, scenario: Scenario) -> float:
    """Fit the per-plan-evaluation constant from one measured run."""
    est = estimate_cost(scenario, variant=result.heuristic)
    if est.plan_evaluations <= 0:
        raise ValueError("estimate has no plan evaluations to attribute time to")
    return result.heuristic_seconds / est.plan_evaluations


def validate_against_trace(result: MappingResult, scenario: Scenario) -> dict:
    """Compare a run's trace counters against the analytic prediction.

    Returns the per-quantity prediction/measurement ratios (1.0 = exact);
    tests assert these stay within an order of magnitude, which is the
    claim the model makes.
    """
    est = estimate_cost(scenario, variant=result.heuristic)
    trace = result.trace
    return {
        "ticks": est.ticks / max(trace.ticks, 1),
        "machine_scans": est.machine_scans / max(trace.machine_scans, 1),
        "commits": scenario.n_tasks / max(trace.n_commits, 1),
    }
