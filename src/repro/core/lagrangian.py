"""Adaptive adjustment of the Lagrangian multipliers.

The paper *simplifies* the Lagrangian approach by holding the multipliers
(α, β, γ) constant during a run, and finds the optimum by offline search
(§VII).  Its summary explicitly calls for "on-the-fly adjustment of the
Lagrangian parameters ... whenever the system environment changes" (§VIII).
This module implements that future work as a subgradient-style outer loop
inspired by the Lagrangian-relaxation scheduling literature the paper
builds on ([LuH93], [LuZ00]):

* a run whose **AET exceeds τ** has over-rewarded time usage → shift weight
  from γ to α (the paper's own remedy: "their (α, β) values adjusted until
  the AET was brought into compliance");
* a run that **fails to map every subtask** ran out of energy or schedule
  room → shift weight from α to β, biasing the version choice toward the
  frugal secondary versions;
* a **successful** run probes a more aggressive α (more primary versions);
  the best successful configuration seen is retained, so the controller
  never ends worse than its first success.

Step sizes shrink harmonically (a standard subgradient schedule), so the
controller converges instead of oscillating.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.objective import Weights
from repro.core.slrh import MappingResult, SlrhConfig, SlrhScheduler
from repro.workload.scenario import Scenario


def _shift(weights: Weights, source: str, target: str, amount: float) -> Weights:
    """Move up to *amount* of weight from *source* to *target* on the simplex."""
    values = {"alpha": weights.alpha, "beta": weights.beta, "gamma": weights.gamma}
    moved = min(amount, values[source])
    values[source] -= moved
    values[target] += moved
    return Weights(**values)


@dataclass
class AdaptiveWeightController:
    """Run-level multiplier controller (see module docstring).

    Attributes
    ----------
    initial:
        Starting weights; a neutral simplex centre works well.
    step:
        Initial weight-shift size; iteration *k* uses ``step / k``.
    max_iters:
        Total SLRH runs allowed.
    """

    initial: Weights = field(default_factory=lambda: Weights(1 / 3, 1 / 3, 1 / 3))
    step: float = 0.15
    max_iters: int = 12

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise ValueError("step must be positive")
        if self.max_iters < 1:
            raise ValueError("max_iters must be >= 1")

    def propose(self, weights: Weights, result: MappingResult, iteration: int) -> Weights:
        """Next weights given the outcome of the last run (1-based iteration)."""
        step = self.step / iteration
        if result.complete and not result.within_tau:
            # Time constraint violated: stop rewarding long schedules.
            return _shift(weights, "gamma", "alpha", step)
        if not result.complete:
            # Ran out of resources: penalise energy harder.
            return _shift(weights, "alpha", "beta", step)
        # Success: probe a more T100-hungry configuration.
        return _shift(weights, "beta", "alpha", step / 2)


def adaptive_slrh(
    scenario: Scenario,
    scheduler_cls: type[SlrhScheduler],
    controller: AdaptiveWeightController | None = None,
    base_config: SlrhConfig | None = None,
) -> tuple[MappingResult, list[MappingResult]]:
    """Run *scheduler_cls* under adaptive weights on *scenario*.

    Returns ``(best, history)`` where *best* is the successful result with
    the highest T100 (or, if no run succeeded, the result mapping the most
    subtasks) and *history* holds every run in order.
    """
    controller = controller or AdaptiveWeightController()
    weights = controller.initial
    history: list[MappingResult] = []
    best: MappingResult | None = None

    for iteration in range(1, controller.max_iters + 1):
        if base_config is None:
            config = SlrhConfig(weights=weights)
        else:
            config = replace(base_config, weights=weights)
        result = scheduler_cls(config).map(scenario)
        history.append(result)
        if _better(result, best):
            best = result
        weights = controller.propose(weights, result, iteration)

    if best is None:  # unreachable while max_iters >= 1 is validated above
        raise RuntimeError("receding-horizon loop produced no iterations")
    return best, history


def _better(candidate: MappingResult, incumbent: MappingResult | None) -> bool:
    """Prefer success, then T100, then mapped count, then lower AET."""
    if incumbent is None:
        return True
    if candidate.success != incumbent.success:
        return candidate.success
    if candidate.t100 != incumbent.t100:
        return candidate.t100 > incumbent.t100
    if candidate.schedule.n_mapped != incumbent.schedule.n_mapped:
        return candidate.schedule.n_mapped > incumbent.schedule.n_mapped
    return candidate.aet < incumbent.aet
