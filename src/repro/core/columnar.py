"""Flat-array candidate pools: the kernel's columnar hot path.

:class:`ColumnarPool` maintains exactly the state of
:class:`repro.core.kernel.CandidatePool` — one delta-maintained pool slot
per (machine, task) with the same cleanliness certificates — but stores it
in parallel ``array`` columns indexed by integer ids instead of per-entry
Python objects.  The per-tick scan then runs on index arithmetic:

* slot lookup is ``machine * n_tasks + task`` into flat columns (kind,
  generation, parent-epoch, planning clock, data-ready, comm floor,
  score, score token) — no dict probe, no attribute chase;
* touch-stamp certificates live in a CSR block (per-task offsets into a
  dependency-id/stamp column pair), so "nothing my plans read has moved"
  is a short loop over two arrays;
* re-scoring after a commit reads per-version fact columns (feasibility,
  energy margin — the plan's TEC delta — and finish time) and inlines the
  objective arithmetic of :meth:`ObjectiveFunction.after_plan` verbatim:
  the same float operations in the same order, so scores are
  bit-identical to the object path's;
* candidate ordering is one stable descending sort over the score column.
  Members are gathered in ascending task order and CPython's sort is
  stable under ``reverse=True`` (equal keys keep their original order),
  so the result is exactly the object pools' ``(-score, task)`` order.

The *dirty* path — entries whose certificates fail — is a **fused
replan**: the same decisions as ``Schedule._plan_pair`` +
:func:`repro.core.pool.select_candidate`, open-coded without the wrapper
layers.  It makes the identical plan-cache probes (``_comm_entry_valid``
→ ``_shift_comms`` → ``_plan_comms_floor``) so the channel-slot reuse
discipline is byte-for-byte the object path's, then finishes the pair in
flat arithmetic:

* machine budgets, the rule-(b) gate, the offline set and the execution
  calendar tail are hoisted once per build — nothing mutates during a
  build, so per-replan ``available_energy`` / ``earliest_gap`` calls
  collapse to float compares (append-only placement at a fixed tail is
  ``max(data_ready, tail)`` by construction);
* both versions are scored inline (the same ``after_plan`` operations in
  the same order), and only the *winning* version's
  :class:`~repro.sim.schedule.ExecutionPlan` is materialised — the loser
  exists as column facts and is rebuilt on demand if a later aggregate
  shift flips the selection;
* the plan-cache writeback stores the same comm facts the generic path
  would (so incremental-mode code and the SLRH-2 stale-pool walk reuse
  them), with ``entry.pair = None`` — the pair layer is superseded by the
  columns.

Columnar mode therefore re-plans exactly the same entries as incremental
mode; the ``pool.reuse_hits`` / ``pool.invalidations`` / ``pool.members``
counters are identical across the two (pinned by the differential fuzz in
``tests/test_kernel.py``), and the speedup is pure constant factor — on
the clean path, inside every replan, and in the kernel's stall-tick
fast-forward — never fewer or different replans.
"""

from __future__ import annotations

import math
from array import array

from repro.core.constants import EPSILON
from repro.core.feasibility import FeasibilityChecker
from repro.core.objective import ObjectiveFunction
from repro.core.pool import Candidate
from repro.obs.spans import NULL_SPAN, NULL_TRACER, NullTracer, Tracer

# The fused replan is a twin of Schedule._plan_pair: it shares the plan
# cache (same entry type, same validity helpers) rather than growing a
# second, subtly different one.
from repro.sim.schedule import ExecutionPlan, Schedule, _PlanCacheEntry
from repro.workload.versions import Version

__all__ = ["ColumnarPool"]

_PRIMARY = Version.PRIMARY
_SECONDARY = Version.SECONDARY
#: The energy-budget comparison scale of Schedule._demand_shortfall /
#: FeasibilityChecker.is_feasible — hoisted so the fused loop keeps the
#: exact generic arithmetic.
_BUDGET_SLACK = 1 + 1e-12

# Slot kinds: the kernel's pool-entry states plus "never written".
_EMPTY, _CANDIDATE, _NO_VERSION, _RULE_B = -1, 0, 1, 2

#: aet_mode -> branch index for the inline scorer (see ObjectiveFunction).
_AET_TENT, _AET_CLAMP, _AET_RAW, _AET_NEGATIVE = 0, 1, 2, 3
_AET_MODES = {
    "tent": _AET_TENT,
    "clamp": _AET_CLAMP,
    "raw": _AET_RAW,
    "negative": _AET_NEGATIVE,
}


class ColumnarPool:
    """Columnar drop-in for :class:`repro.core.kernel.CandidatePool`.

    Same contract: :meth:`pool_for` materialises the ordered pool U plus
    the earliest unreleased-task release time, the owner reports commits
    via :meth:`note_commit` and calls :meth:`invalidate_all` after any
    other mutation.  Mappings and pool counters are byte-identical to the
    object pools in every mode.
    """

    def __init__(
        self,
        schedule: Schedule,
        checker: FeasibilityChecker,
        objective: ObjectiveFunction,
    ) -> None:
        self.schedule = schedule
        self.checker = checker
        self.objective = objective
        scenario = schedule.scenario
        n_machines = scenario.n_machines
        n_tasks = scenario.n_tasks
        self._n_machines = n_machines
        self._n_tasks = n_tasks
        size = n_machines * n_tasks
        # Slot columns, indexed machine * n_tasks + task.
        self._kind = array("b", [_EMPTY]) * size
        self._slot_gen = array("q", [0]) * size
        self._epoch = array("q", [0]) * size
        self._nb = array("d", [0.0]) * size
        self._ready_at = array("d", [0.0]) * size  # pair data-ready floor
        self._comm_floor = array("d", [0.0]) * size  # min planned-comm start
        self._score = array("d", [0.0]) * size
        self._token_col = array("q", [0]) * size
        # Per-version score facts: feasibility, energy margin (the plan's
        # TEC delta) and finish time — everything after_plan reads.
        self._feas0 = array("b", [0]) * size
        self._feas1 = array("b", [0]) * size
        self._energy0 = array("d", [0.0]) * size
        self._energy1 = array("d", [0.0]) * size
        self._finish0 = array("d", [0.0]) * size
        self._finish1 = array("d", [0.0]) * size
        self._start0 = array("d", [0.0]) * size
        self._start1 = array("d", [0.0]) * size
        # Touch-stamp certificates in CSR form: task t's dependency ids
        # and stamps live at [dep_off[t], dep_off[t] + |parents(t)| + 1)
        # within each machine's block of _dep_span entries.
        parents = scenario.dag.parents
        offs = array("l", [0]) * n_tasks
        total = 0
        for t in range(n_tasks):
            offs[t] = total
            total += len(parents[t]) + 1
        self._dep_off = offs
        self._dep_span = total
        self._dep_ids = array("i", [0]) * (n_machines * total)
        self._dep_stamps = array("q", [0]) * (n_machines * total)
        self._dep_n = array("i", [0]) * size
        # Per-machine event counters (see CandidatePool._touch).
        self._touch = array("q", [0]) * n_machines
        # Release-time column: the schedule's *live* per-task release list
        # (streamed arrivals move entries in place), aliased rather than
        # copied so the pool never reads a stale release.
        self._release = schedule.release_times_view()
        # Lazily-materialised plan payloads per slot: ``[primary_plan |
        # None, secondary_plan | None, comms]``.  The fused replan builds
        # only the winning version's ExecutionPlan; the loser is rebuilt
        # from the columns iff an aggregate shift later flips the
        # selection.
        self._pairs: list[list | None] = [None] * size
        self._cands: list[Candidate | None] = [None] * size
        # Static per-slot facts, filled lazily from the schedule/checker
        # memos they mirror (ETC, versions and data sizes never change for
        # a pool's lifetime): exec (duration, energy) pairs, the rule-(b)
        # secondary required energy, and the per-version worst-case
        # outgoing reserves — probed by index instead of tuple-keyed dicts.
        self._facts: list[tuple | None] = [None] * size
        self._req1: list[float | None] = [None] * size
        self._wc: list[tuple | None] = [None] * size
        # Generation stamp: invalidate_all bumps it instead of clearing
        # every column (slots stamped with an older generation are dead).
        self._gen = 1
        self._agg: tuple[int, float, float] | None = None
        self._token = 0

    def invalidate_all(self) -> None:
        """Drop every slot — the big hammer for events without a precise
        delta (churn offline/online, rollbacks, external debits)."""
        self._gen += 1
        self._agg = None

    def note_commit(self, plan: ExecutionPlan) -> None:
        """Record a commit's footprint: bump the touch counter of every
        machine it mutated and retire the committed task's slots."""
        schedule = self.schedule
        touched = {plan.machine}
        for p in schedule.scenario.dag.parents[plan.task]:
            touched.add(schedule.assignments[p].machine)
        touch = self._touch
        for j in touched:
            touch[j] += 1
        kind = self._kind
        pairs = self._pairs
        cands = self._cands
        task = plan.task
        n_tasks = self._n_tasks
        for m in range(self._n_machines):
            idx = m * n_tasks + task
            kind[idx] = _EMPTY
            pairs[idx] = None
            cands[idx] = None

    def note_release(self, task: int) -> None:
        """A streamed arrival moved *task*'s release time: retire its
        slots.  (A held task is release-gated out of every pool, so they
        should all be empty — clearing is defensive symmetry with
        :meth:`note_commit`.)  Other tasks' slots never read a neighbour's
        release, so they survive — the precise delta that lets a session
        keep its pool across arrivals."""
        kind = self._kind
        pairs = self._pairs
        cands = self._cands
        n_tasks = self._n_tasks
        for m in range(self._n_machines):
            idx = m * n_tasks + task
            kind[idx] = _EMPTY
            pairs[idx] = None
            cands[idx] = None

    def note_machine_return(self, machine: int) -> None:
        """A lost machine rejoined the grid: fresh touch epoch plus a
        clean slot block, so certificates minted while it was offline (or
        before it left) can never validate against its new state.  Other
        machines' slots keep their stamps — *machine*'s bumped counter
        retires exactly the entries that depended on it."""
        self._touch[machine] += 1
        kind = self._kind
        pairs = self._pairs
        cands = self._cands
        base = machine * self._n_tasks
        for idx in range(base, base + self._n_tasks):
            kind[idx] = _EMPTY
            pairs[idx] = None
            cands[idx] = None
        self._agg = None

    def pool_for(
        self, machine: int, not_before: float, tracer: Tracer | NullTracer = NULL_TRACER
    ) -> tuple[list[Candidate], float | None]:
        """The ordered pool U for *machine* at *not_before*, plus the
        earliest release time among ready-but-unreleased tasks (``None``
        when there is none) — the kernel's wake-up hint."""
        schedule = self.schedule
        perf = schedule.perf
        agg = schedule.aggregate_state()
        if agg != self._agg:
            self._agg = agg
            self._token += 1
        token = self._token
        gen = self._gen
        n_tasks = self._n_tasks
        base = machine * n_tasks
        dep_base = machine * self._dep_span
        kind = self._kind
        slot_gen = self._slot_gen
        epoch_col = self._epoch
        nb_col = self._nb
        ready_col = self._ready_at
        comm_col = self._comm_floor
        score_col = self._score
        token_col = self._token_col
        feas0 = self._feas0
        feas1 = self._feas1
        energy0 = self._energy0
        energy1 = self._energy1
        finish0 = self._finish0
        finish1 = self._finish1
        start0 = self._start0
        start1 = self._start1
        dep_off = self._dep_off
        dep_ids = self._dep_ids
        dep_stamps = self._dep_stamps
        dep_n = self._dep_n
        touch = self._touch
        release = self._release
        pairs = self._pairs
        cands = self._cands
        epochs = schedule.parent_epochs()
        assignments = schedule.assignments
        parents = schedule.scenario.dag.parents
        objective = self.objective
        checker = self.checker
        # Hoisted objective constants for the inline re-score: the exact
        # operands of ObjectiveFunction.value / after_plan.
        weights = objective.weights
        alpha = weights.alpha
        beta = weights.beta
        gamma = weights.gamma
        obj_n = objective.n_tasks
        tse = objective.total_system_energy
        tau = objective.tau
        aet_mode = _AET_MODES[objective.aet_mode]
        t100_base, tec_base, aet_base = agg
        # The T100 term of each score is a build constant per version —
        # hoisting it drops two multiplies and a divide from every score
        # without changing a single float operation's operands.
        a0 = alpha * ((t100_base + 1) / obj_n)
        a1 = alpha * (t100_base / obj_n)
        gate = not_before + EPSILON
        # Per-build hoists for the fused replan.  Nothing mutates the
        # schedule during a build (commits land between builds), so machine
        # budgets, the offline set, the rule-(b) gate and the execution
        # calendar tail are loop constants — the per-replan
        # available_energy / earliest_gap calls of the generic path
        # collapse to float compares against these.
        cache_on = schedule.plan_cache_enabled
        plan_cache = schedule._plan_cache
        cache_key = (machine, False)
        exec_tail = schedule.exec_timeline[machine].tail
        offline_set = schedule.offline
        machine_offline = machine in offline_set
        avail = schedule.available_energy
        # Rule (b) reduced for ready tasks: assigned/parents-mapped always
        # hold, so FeasibilityChecker.is_feasible is one memoised-static
        # lookup against this threshold (same arithmetic, same slack).
        # Per-machine verdict thresholds are premultiplied once per build —
        # the _demand_shortfall comparison scale on the same availability.
        rb_gate = avail(machine) * _BUDGET_SLACK + 1e-12
        thresh: list[float | None] = [None] * self._n_machines
        thresh[machine] = rb_gate
        required = checker.required_energy
        required_memo = checker._required
        comm_valid = schedule._comm_entry_valid
        shift_comms = schedule._shift_comms
        comms_floor = schedule._plan_comms_floor
        exec_facts_fn = schedule.exec_facts
        exec_static = schedule._exec_static
        wc_outgoing = schedule._worst_case_outgoing
        wc_memo = schedule._wc_out
        edge_reserve = schedule._edge_reserve
        hold_reserves = schedule.hold_comm_reserves
        facts_col = self._facts
        req1_col = self._req1
        wc_col = self._wc
        n_hit = n_shift = n_miss = 0
        members: list[int] = []  # slot indices, gathered in task order
        min_release: float | None = None
        reused = invalidated = 0
        span = (
            tracer.span("pool.columnar", machine=machine, clock=not_before)
            if tracer.enabled
            else NULL_SPAN
        )
        with span, perf.timer("phase.pool_seconds"):
            for task in schedule.ready_sorted():
                r = release[task]
                if r > gate:
                    if min_release is None or r < min_release:
                        min_release = r
                    continue
                idx = base + task
                k = kind[idx]
                clean = (
                    k != _EMPTY
                    and slot_gen[idx] == gen
                    and epoch_col[idx] == epochs[task]
                )
                if clean:
                    db = dep_base + dep_off[task]
                    for d in range(dep_n[idx]):
                        if touch[dep_ids[db + d]] != dep_stamps[db + d]:
                            clean = False
                            break
                    if clean and k == _CANDIDATE and not_before != nb_col[idx]:
                        # Clock rule — identical to CandidatePool: stored
                        # plans survive a clock advance only when the
                        # data-ready floor dominates both clocks and every
                        # planned transfer starts at/after the new clock.
                        enb = nb_col[idx]
                        dr = ready_col[idx]
                        if not (
                            not_before > enb
                            and dr > enb
                            and dr >= not_before
                            and comm_col[idx] >= not_before
                        ):
                            clean = False
                if clean:
                    reused += 1
                    if k == _CANDIDATE:
                        if token_col[idx] != token:
                            # Aggregates moved: re-score both versions with
                            # after_plan's exact arithmetic (same ops, same
                            # order) and re-run the selection tie rule.
                            win = -1
                            best = 0.0
                            if feas0[idx]:
                                f = finish0[idx]
                                aet = aet_base if aet_base >= f else f
                                ratio = aet / tau
                                if aet_mode == _AET_TENT:
                                    two = 2.0 - ratio
                                    term = ratio if ratio <= two else two
                                    if term <= 0.0:
                                        term = 0.0
                                elif aet_mode == _AET_CLAMP:
                                    term = ratio if ratio <= 1.0 else 1.0
                                elif aet_mode == _AET_RAW:
                                    term = ratio
                                else:
                                    term = -ratio
                                best = (
                                    a0
                                    - beta * ((tec_base + energy0[idx]) / tse)
                                    + gamma * term
                                )
                                win = 0
                            if feas1[idx]:
                                f = finish1[idx]
                                aet = aet_base if aet_base >= f else f
                                ratio = aet / tau
                                if aet_mode == _AET_TENT:
                                    two = 2.0 - ratio
                                    term = ratio if ratio <= two else two
                                    if term <= 0.0:
                                        term = 0.0
                                elif aet_mode == _AET_CLAMP:
                                    term = ratio if ratio <= 1.0 else 1.0
                                elif aet_mode == _AET_RAW:
                                    term = ratio
                                else:
                                    term = -ratio
                                score1 = (
                                    a1
                                    - beta * ((tec_base + energy1[idx]) / tse)
                                    + gamma * term
                                )
                                # Tie rule: the secondary never counts
                                # toward T100, so it wins only strictly.
                                if win < 0 or score1 > best:
                                    best = score1
                                    win = 1
                            score_col[idx] = best
                            token_col[idx] = token
                            pair = pairs[idx]
                            plan = pair[win]
                            if plan is None:
                                # The aggregate shift flipped the winner to
                                # the version the fused replan left as
                                # column facts — materialise it now, from
                                # the stored columns, bit-identically to
                                # the plan the generic path built eagerly.
                                plan = object.__new__(ExecutionPlan)
                                plan.__dict__.update({
                                    "task": task,
                                    "version": _PRIMARY
                                    if win == 0
                                    else _SECONDARY,
                                    "machine": machine,
                                    "start": start0[idx]
                                    if win == 0
                                    else start1[idx],
                                    "finish": finish0[idx]
                                    if win == 0
                                    else finish1[idx],
                                    "exec_energy": exec_facts_fn(task, machine)[
                                        win
                                    ][1],
                                    "comms": pair[2],
                                    "energy_delta": energy0[idx]
                                    if win == 0
                                    else energy1[idx],
                                    "data_ready": ready_col[idx],
                                    "feasible": True,
                                    "reason": "",
                                })
                                pair[win] = plan
                            cand = object.__new__(Candidate)
                            cand.__dict__.update({
                                "task": task,
                                "plan": plan,
                                "score": best,
                            })
                            cands[idx] = cand
                        members.append(idx)
                    continue
                invalidated += 1
                epoch = epochs[task]
                slot_gen[idx] = gen
                epoch_col[idx] = epoch
                req = req1_col[idx]
                if req is None:
                    req = required_memo.get((task, machine, _SECONDARY))
                    if req is None:
                        req = required(task, machine, _SECONDARY)
                    req1_col[idx] = req
                if req > rb_gate:
                    kind[idx] = _RULE_B
                    pairs[idx] = None
                    cands[idx] = None
                    deps = {machine}
                    for p in parents[task]:
                        deps.add(assignments[p].machine)
                else:
                    # -- fused replan: _plan_pair + select_candidate without
                    # the wrapper layers.  Identical plan-cache probes, then
                    # flat arithmetic against the per-build hoists.
                    entry = None
                    pcomms = None
                    dr_floor = 0.0
                    local_floor = 0.0
                    if cache_on:
                        per_task = plan_cache.get(task)
                        if per_task is not None:
                            entry = per_task.get(cache_key)
                        if entry is not None:
                            if comm_valid(entry, machine, not_before, epoch):
                                n_hit += 1
                                pcomms = entry.comms
                                dr_floor = entry.dr_floor
                                min_comm = entry.min_comm_start
                            else:
                                shifted = shift_comms(
                                    entry, machine, not_before, epoch
                                )
                                if shifted is not None:
                                    n_shift += 1
                                    pcomms, dr_floor = shifted
                                    min_comm = entry.min_comm_start
                                else:
                                    entry = None
                    if pcomms is None:
                        n_miss += 1
                        pcomms, dr_floor, local_floor = comms_floor(
                            task, machine, not_before
                        )
                        min_comm = (
                            min(c.start for c in pcomms) if pcomms else math.inf
                        )
                    # A surviving entry certifies the parents' assignments,
                    # so its dep_machines IS {machine} ∪ parent machines.
                    if entry is not None:
                        deps = entry.dep_machines
                    else:
                        deps = {machine}
                        for p in parents[task]:
                            deps.add(assignments[p].machine)
                    # max() (not a bare compare) so signed-zero floors stay
                    # bitwise identical to the generic path's data_ready.
                    data_ready = max(not_before, dr_floor)
                    offline = machine_offline
                    comm_energy = 0.0
                    for c in pcomms:
                        comm_energy += c.energy
                        if c.src in offline_set:
                            offline = True
                    facts = facts_col[idx]
                    if facts is None:
                        facts = exec_static.get((task, machine))
                        if facts is None:
                            facts = exec_facts_fn(task, machine)
                        facts_col[idx] = facts
                    d0 = d1 = None
                    vf0 = vf1 = False
                    if not offline:
                        # A surviving entry proves the parents' assignments
                        # are unchanged and transfer energies never move in
                        # a shift, so its stored demand dicts are
                        # bit-identical to fresh ones (see _plan_pair).
                        if entry is not None:
                            d0, d1 = entry.demands
                        if d0 is None or d1 is None:
                            # _net_energy_demand for both versions in one
                            # walk: per-dict float operations in exactly the
                            # generic order, the per-version worst-case
                            # outgoing reserve from its memo.
                            d0 = {machine: facts[0][1]}
                            d1 = {machine: facts[1][1]}
                            for c in pcomms:
                                src = c.src
                                ce = c.energy
                                d0[src] = d0.get(src, 0.0) + ce
                                d1[src] = d1.get(src, 0.0) + ce
                            if hold_reserves:
                                for p in parents[task]:
                                    src = assignments[p].machine
                                    rel = edge_reserve.get((p, task), 0.0)
                                    d0[src] = d0.get(src, 0.0) - rel
                                    d1[src] = d1.get(src, 0.0) - rel
                                w01 = wc_col[idx]
                                if w01 is None:
                                    w0 = wc_memo.get(
                                        (task, machine, _PRIMARY)
                                    )
                                    if w0 is None:
                                        w0 = wc_outgoing(
                                            task, machine, _PRIMARY
                                        )
                                    w1 = wc_memo.get(
                                        (task, machine, _SECONDARY)
                                    )
                                    if w1 is None:
                                        w1 = wc_outgoing(
                                            task, machine, _SECONDARY
                                        )
                                    w01 = wc_col[idx] = (w0, w1)
                                d0[machine] += w01[0]
                                d1[machine] += w01[1]
                        # _demand_shortfall's verdict, against the hoisted
                        # budgets (nothing commits mid-build).
                        vf0 = True
                        for j, amount in d0.items():
                            th = thresh[j]
                            if th is None:
                                th = thresh[j] = (
                                    avail(j) * _BUDGET_SLACK + 1e-12
                                )
                            if amount > th:
                                vf0 = False
                                break
                        vf1 = True
                        for j, amount in d1.items():
                            th = thresh[j]
                            if th is None:
                                th = thresh[j] = (
                                    avail(j) * _BUDGET_SLACK + 1e-12
                                )
                            if amount > th:
                                vf1 = False
                                break
                    # Placement + inline scoring.  Append-only earliest_gap
                    # on a calendar whose busy intervals all end at/before
                    # its tail is max(data_ready, tail) by construction;
                    # dead versions carry no placement and are never read.
                    win = -1
                    best = 0.0
                    if vf0:
                        st = max(data_ready, exec_tail)
                        fin = st + facts[0][0]
                        ed = facts[0][1] + comm_energy
                        start0[idx] = st
                        finish0[idx] = fin
                        energy0[idx] = ed
                        aet = aet_base if aet_base >= fin else fin
                        ratio = aet / tau
                        if aet_mode == _AET_TENT:
                            two = 2.0 - ratio
                            term = ratio if ratio <= two else two
                            if term <= 0.0:
                                term = 0.0
                        elif aet_mode == _AET_CLAMP:
                            term = ratio if ratio <= 1.0 else 1.0
                        elif aet_mode == _AET_RAW:
                            term = ratio
                        else:
                            term = -ratio
                        best = a0 - beta * ((tec_base + ed) / tse) + gamma * term
                        win = 0
                    if vf1:
                        st = max(data_ready, exec_tail)
                        fin = st + facts[1][0]
                        ed = facts[1][1] + comm_energy
                        start1[idx] = st
                        finish1[idx] = fin
                        energy1[idx] = ed
                        aet = aet_base if aet_base >= fin else fin
                        ratio = aet / tau
                        if aet_mode == _AET_TENT:
                            two = 2.0 - ratio
                            term = ratio if ratio <= two else two
                            if term <= 0.0:
                                term = 0.0
                        elif aet_mode == _AET_CLAMP:
                            term = ratio if ratio <= 1.0 else 1.0
                        elif aet_mode == _AET_RAW:
                            term = ratio
                        else:
                            term = -ratio
                        score1 = a1 - beta * ((tec_base + ed) / tse) + gamma * term
                        # Tie rule: the secondary wins only strictly.
                        if win < 0 or score1 > best:
                            best = score1
                            win = 1
                    if win < 0:
                        kind[idx] = _NO_VERSION
                        pairs[idx] = None
                        cands[idx] = None
                    else:
                        wenergy = facts[win][1]
                        plan = object.__new__(ExecutionPlan)
                        plan.__dict__.update({
                            "task": task,
                            "version": _PRIMARY if win == 0 else _SECONDARY,
                            "machine": machine,
                            "start": start0[idx] if win == 0 else start1[idx],
                            "finish": finish0[idx] if win == 0 else finish1[idx],
                            "exec_energy": wenergy,
                            "comms": pcomms,
                            "energy_delta": wenergy + comm_energy,
                            "data_ready": data_ready,
                            "feasible": True,
                            "reason": "",
                        })
                        kind[idx] = _CANDIDATE
                        pairs[idx] = [
                            plan if win == 0 else None,
                            plan if win == 1 else None,
                            pcomms,
                        ]
                        cand = object.__new__(Candidate)
                        cand.__dict__.update({
                            "task": task,
                            "plan": plan,
                            "score": best,
                        })
                        cands[idx] = cand
                        score_col[idx] = best
                        members.append(idx)
                    nb_col[idx] = not_before
                    ready_col[idx] = data_ready
                    comm_col[idx] = min_comm
                    feas0[idx] = 1 if vf0 else 0
                    feas1[idx] = 1 if vf1 else 0
                    token_col[idx] = token
                    if cache_on:
                        if entry is None:
                            entry = self._new_cache_entry(
                                task,
                                machine,
                                not_before,
                                pcomms,
                                dr_floor,
                                local_floor,
                                min_comm,
                                epoch,
                                deps,
                            )
                        # The pair layer is superseded by the columns: a
                        # later generic probe (e.g. SLRH-2's stale-pool
                        # walk) reuses the comm facts and demands through
                        # _plan_pair, never a stale pair.
                        entry.pair = None
                        entry.pair_nb = not_before
                        entry.demands = (d0, d1)
                # Certificate stamps: the target machine plus every parent's
                # machine — exactly the set a commit can move.  Order is
                # irrelevant: validity is a conjunction over the set.
                db = dep_base + dep_off[task]
                d = 0
                for j in deps:
                    dep_ids[db + d] = j
                    dep_stamps[db + d] = touch[j]
                    d += 1
                dep_n[idx] = d
            # One argsort over the score column: members were gathered in
            # ascending task order and reverse sorts are stable, so equal
            # scores keep task order — exactly the (-score, task) rule.
            members.sort(key=score_col.__getitem__, reverse=True)
            pool = [cands[i] for i in members]
        perf.inc("pool.builds")
        perf.inc("pool.members", len(pool))
        if reused:
            perf.inc("pool.reuse_hits", reused)
        if invalidated:
            perf.inc("pool.invalidations", invalidated)
        # Plan-cache bookkeeping, batched per build (the fused path never
        # takes a pair hit — its pair layer lives in the columns).
        if n_hit:
            perf.inc("plan.cache.comm_hit", n_hit)
        if n_shift:
            perf.inc("plan.cache.comm_shift", n_shift)
        if n_miss:
            perf.inc("plan.cache.comm_miss", n_miss)
        n_pairs = n_hit + n_shift + n_miss
        if n_pairs:
            perf.inc("plan.cache.pair_miss", n_pairs)
            perf.inc("plan.pairs", n_pairs)
        return pool, min_release

    def _new_cache_entry(
        self,
        task: int,
        machine: int,
        not_before: float,
        comms: tuple,
        dr_floor: float,
        local_floor: float,
        min_comm: float,
        epoch: int,
        deps: set[int],
    ) -> _PlanCacheEntry:
        """Create and register a plan-cache entry carrying the comm facts a
        generic ``_plan_pair`` miss would store — same validity
        certificates, same replay facts — so incremental-mode code can keep
        reusing entries the fused paths write (and vice versa)."""
        schedule = self.schedule
        in_tl = schedule.in_channel[machine]
        entry = _PlanCacheEntry()
        entry.parent_epoch = epoch
        entry.insertion = False
        entry.comms = comms
        entry.dr_floor = dr_floor
        entry.comm_nb = not_before
        entry.min_comm_start = min_comm
        entry.in_version = entry.base_in_version = in_tl.version
        entry.in_release = in_tl.release_version
        entry.local_floor = local_floor
        if comms:
            out_channel = schedule.out_channel
            assignments = schedule.assignments
            seen: dict[int, tuple[int, int]] = {}
            lb_floors = []
            base_starts = []
            window_ends = []
            # Immutable replay facts (see _shift_comms), one pass.
            for c in comms:
                src = c.src
                if src not in seen:
                    otl = out_channel[src]
                    seen[src] = (otl.version, otl.release_version)
                lb_floors.append(assignments[c.parent].finish)
                start = c.start
                base_starts.append(start)
                we = out_channel[src].next_busy_start_after(start)
                wi = in_tl.next_busy_start_after(start)
                window_ends.append(we if we <= wi else wi)
            entry.out_versions = tuple(
                (src, v, rel) for src, (v, rel) in seen.items()
            )
            entry.base_out_versions = tuple(
                (src, v) for src, (v, rel) in seen.items()
            )
            entry.lb_floors = tuple(lb_floors)
            entry.base_starts = tuple(base_starts)
            entry.window_ends = tuple(window_ends)
        else:
            entry.out_versions = ()
            entry.base_out_versions = ()
            entry.lb_floors = ()
            entry.base_starts = ()
            entry.window_ends = ()
        entry.dep_machines = tuple(sorted(deps))
        schedule._plan_cache.setdefault(task, {})[(machine, False)] = entry
        return entry

    def replan(self, task: int, version, machine: int, not_before: float):
        """Fused twin of :meth:`Schedule.plan` for the stale-pool walk
        (SLRH-2): the same plan-cache probes, demand verdicts and placement
        as the generic path, materialising only the requested version's
        plan.  Every committed plan is byte-identical to the generic
        path's; infeasible plans carry an empty ``reason`` string — the
        kernel reads reasons only into a decision ledger, and ledgered
        runs never take this path (the kernel falls back to
        ``Schedule.plan``)."""
        schedule = self.schedule
        perf = schedule.perf
        vi = 0 if version is _PRIMARY else 1
        epoch = schedule.parent_epochs()[task]
        cache_on = schedule.plan_cache_enabled
        entry = None
        pcomms = None
        dr_floor = 0.0
        local_floor = 0.0
        min_comm = math.inf
        if cache_on:
            per_task = schedule._plan_cache.get(task)
            if per_task is not None:
                entry = per_task.get((machine, False))
            if entry is not None:
                if schedule._comm_entry_valid(entry, machine, not_before, epoch):
                    perf.inc("plan.cache.comm_hit")
                    pcomms = entry.comms
                    dr_floor = entry.dr_floor
                    min_comm = entry.min_comm_start
                else:
                    shifted = schedule._shift_comms(
                        entry, machine, not_before, epoch
                    )
                    if shifted is not None:
                        perf.inc("plan.cache.comm_shift")
                        pcomms, dr_floor = shifted
                        min_comm = entry.min_comm_start
                    else:
                        entry = None
        if pcomms is None:
            perf.inc("plan.cache.comm_miss")
            pcomms, dr_floor, local_floor = schedule._plan_comms_floor(
                task, machine, not_before
            )
            for c in pcomms:
                if c.start < min_comm:
                    min_comm = c.start
        perf.inc("plan.cache.pair_miss")
        perf.inc("plan.pairs")
        data_ready = max(not_before, dr_floor)
        offline_set = schedule.offline
        offline = machine in offline_set
        comm_energy = 0.0
        for c in pcomms:
            comm_energy += c.energy
            if c.src in offline_set:
                offline = True
        facts = schedule._exec_static.get((task, machine))
        if facts is None:
            facts = schedule.exec_facts(task, machine)
        d0 = d1 = None
        feasible = False
        if not offline:
            if entry is not None:
                d0, d1 = entry.demands
            if d0 is None or d1 is None:
                d0 = schedule._net_energy_demand(
                    task, machine, _PRIMARY, facts[0][1], pcomms
                )
                d1 = schedule._net_energy_demand(
                    task, machine, _SECONDARY, facts[1][1], pcomms
                )
            avail = schedule.available_energy
            feasible = True
            for j, amount in (d0 if vi == 0 else d1).items():
                if amount > avail(j) * _BUDGET_SLACK + 1e-12:
                    feasible = False
                    break
        duration, exec_energy = facts[vi]
        if feasible:
            # Append-only placement at the (post-commit) calendar tail.
            start = max(data_ready, schedule.exec_timeline[machine].tail)
        else:
            # Dead plans anchor at their data-ready time (see _plan_pair).
            start = data_ready
        plan = object.__new__(ExecutionPlan)
        plan.__dict__.update({
            "task": task,
            "version": version,
            "machine": machine,
            "start": start,
            "finish": start + duration,
            "exec_energy": exec_energy,
            "comms": pcomms,
            "energy_delta": exec_energy + comm_energy,
            "data_ready": data_ready,
            "feasible": feasible,
            "reason": "",
        })
        if cache_on:
            if entry is None:
                deps = {machine}
                assignments = schedule.assignments
                for p in schedule.scenario.dag.parents[task]:
                    deps.add(assignments[p].machine)
                entry = self._new_cache_entry(
                    task,
                    machine,
                    not_before,
                    pcomms,
                    dr_floor,
                    local_floor,
                    min_comm,
                    epoch,
                    deps,
                )
            entry.pair = None
            entry.pair_nb = not_before
            entry.demands = (d0, d1)
        return plan
