"""The Simplified Lagrangian Receding Horizon scheduler family (§IV, §V).

The SLRH is a *dynamic* (online) heuristic executed every ΔT clock cycles.
At each invocation it scans the machines in numerical order; for each
machine that is **available** (no execution committed at or beyond the
current clock) it builds the ordered candidate pool U
(:func:`repro.core.pool.build_candidate_pool`) and maps the highest-scoring
candidate that can *start* within the receding horizon ``[t, t + H]``.
Mapping a candidate schedules all of its incoming communications and debits
all energies immediately.

The three variants differ only in the per-machine inner loop:

* **SLRH-1** — one assignment per machine per tick (the baseline);
* **SLRH-2** — keeps assigning from the *same* pool (original version
  choices and ordering) until the pool is exhausted or nothing more can
  start within the horizon; the pool is **not** re-evaluated between
  assignments, so its scores and start times go progressively stale — the
  paper found this variant rarely maps all 1024 subtasks;
* **SLRH-3** — like SLRH-2 but rebuilds and re-evaluates U after *every*
  assignment (newly-ready children join immediately).

The loop terminates when every subtask is mapped, or the clock passes τ
(the run is then incomplete and will be rejected by the weight search), or
a safety tick cap is hit.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.core.constants import EPSILON
from repro.core.feasibility import FeasibilityChecker
from repro.core.kernel import SchedulingKernel, TickPolicy, resolve_kernel_mode
from repro.core.objective import ObjectiveFunction, Weights
from repro.obs.ledger import DEADLINE_INFEASIBLE, DecisionLedger
from repro.obs.spans import NULL_SPAN, NULL_TRACER, NullTracer, Tracer
from repro.sim.clock import SimulationClock
from repro.sim.schedule import Schedule
from repro.sim.trace import MappingTrace
from repro.util.timing import Stopwatch
from repro.util.units import CYCLE_SECONDS
from repro.workload.scenario import Scenario


@dataclass(frozen=True)
class SlrhConfig:
    """SLRH tuning knobs.

    Paper defaults: ΔT = 10 cycles, H = 100 cycles, 0.1 s cycles (§VII).
    """

    weights: Weights
    delta_t_cycles: int = 10
    horizon_cycles: int = 100
    cycle_seconds: float = CYCLE_SECONDS
    #: Hard cap on heuristic invocations; ``None`` derives it from τ.
    max_ticks: int | None = None
    #: Disable the worst-case comm-energy reserve (ablation only).
    comm_reserve: bool = True
    #: AET-term semantics of the objective (ablation; see ObjectiveFunction).
    aet_mode: str = "tent"
    #: Order in which the per-tick loop visits machines.  The paper checks
    #: them "in simple numerical order" (``index``); alternatives quantify
    #: that choice: ``battery`` visits the machine with the most available
    #: energy first (spreads energy drain), ``round_robin`` rotates the
    #: starting machine every tick (spreads the first-pick advantage).
    machine_order: str = "index"
    #: Reuse tentative :class:`~repro.sim.schedule.ExecutionPlan`s across
    #: pool evaluations when the state they depend on is unchanged (see
    #: the plan cache in :mod:`repro.sim.schedule`).  Mapping results are
    #: identical either way; disabling is for benchmarking.
    plan_cache: bool = True
    #: Cycles the mapper itself needs to produce a decision.  §IV warns
    #: that "the execution time of the heuristic in a real-time field
    #: application ... could lead to significantly larger minimum ΔT
    #: values"; with a non-zero latency every action decided at tick t is
    #: scheduled no earlier than t + latency, modelling an on-board
    #: controller that cannot act instantaneously.
    decision_latency_cycles: int = 0
    #: Record candidate *rejections* (with reason codes and margins) into
    #: a :class:`repro.obs.ledger.DecisionLedger` on the mapping trace —
    #: the input of ``python -m repro.experiments explain``.  Recording
    #: never changes the mapping; off by default so the hot path pays
    #: nothing.  A ledger forces the ``rebuild`` kernel mode: rejection
    #: records are per-tick history that only exists when pools are
    #: actually rebuilt.
    ledger: bool = False
    #: Candidate-pool maintenance mode: ``"columnar"`` (flat-array pools —
    #: the default), ``"incremental"`` (delta-maintained object pools), or
    #: ``"rebuild"`` (from-scratch every serve — the differential oracle);
    #: ``None`` reads ``$REPRO_KERNEL``.  The mapping is byte-identical in
    #: every mode; see :mod:`repro.core.kernel`.
    kernel: str | None = None


#: Smallest heuristic runtime treated as distinguishable from zero when
#: dividing by it: the perf_counter resolution, floored at one nanosecond.
#: ``perf_counter`` can report 0.0 elapsed for a mapping faster than one
#: timer tick; clamping the denominator keeps ratio metrics finite.
MIN_TIMED_SECONDS: float = max(
    time.get_clock_info("perf_counter").resolution, 1e-9
)


@dataclass(frozen=True)
class MappingResult:
    """Outcome of one heuristic run on one scenario."""

    schedule: Schedule
    trace: MappingTrace
    heuristic_seconds: float
    heuristic: str
    weights: Weights

    @property
    def complete(self) -> bool:
        return self.schedule.is_complete

    @property
    def within_tau(self) -> bool:
        return self.schedule.makespan <= self.schedule.scenario.tau + EPSILON

    @property
    def success(self) -> bool:
        """The paper's acceptance rule: all subtasks mapped within τ (energy
        holds by construction)."""
        return self.complete and self.within_tau

    @property
    def t100(self) -> int:
        return self.schedule.t100

    @property
    def aet(self) -> float:
        return self.schedule.makespan

    @property
    def tec(self) -> float:
        return self.schedule.total_energy_consumed

    @property
    def perf(self) -> dict:
        """Performance-counter snapshot of the run (see :mod:`repro.perf`)."""
        return self.trace.perf

    def value_per_second(self) -> float:
        """Figure 7's metric: T100 per second of heuristic execution time.

        The denominator is clamped to the wall-clock timer's resolution:
        at reduced scales a mapping can complete in under one timer tick,
        and an ``inf`` here would poison every mean it is averaged into
        (the Figure 7 report).  The clamp makes the metric a finite
        "at least this many per second" in that regime.
        """
        return self.t100 / max(self.heuristic_seconds, MIN_TIMED_SECONDS)

    def summary(self) -> dict:
        s = self.schedule.summary()
        s.update(
            heuristic=self.heuristic,
            heuristic_seconds=self.heuristic_seconds,
            alpha=self.weights.alpha,
            beta=self.weights.beta,
            gamma=self.weights.gamma,
            success=self.success,
        )
        return s


class SlrhScheduler:
    """Base class implementing the clock-driven outer loop (Figure 1).

    The loop itself — clock advance, machine scan, candidate pools, the
    commit walk — lives in :class:`repro.core.kernel.SchedulingKernel`;
    a variant is nothing but a :class:`~repro.core.kernel.TickPolicy`
    answering "how many commits per machine per tick, and what happens to
    the pool between commits".
    """

    #: Variant label used in reports; subclasses override.
    name = "SLRH"
    #: The per-(tick, machine) serve rule; subclasses override.
    policy: TickPolicy = TickPolicy(max_commits=1, refresh="none")

    def __init__(self, config: SlrhConfig) -> None:
        self.config = config

    def make_kernel(self, schedule: Schedule) -> SchedulingKernel:
        """A :class:`~repro.core.kernel.SchedulingKernel` for *schedule*
        under this scheduler's configuration.  :meth:`map` builds one per
        run; the churn engine builds one per *schedule* and threads it
        through every segment so the incremental pool survives in between.
        """
        cfg = self.config
        scenario = schedule.scenario
        return SchedulingKernel(
            schedule,
            FeasibilityChecker(scenario, comm_reserve=cfg.comm_reserve),
            ObjectiveFunction.for_scenario(
                scenario, cfg.weights, aet_mode=cfg.aet_mode
            ),
            mode=resolve_kernel_mode(cfg.kernel, ledger=cfg.ledger),
            machine_order=cfg.machine_order,
            decision_latency_seconds=(
                cfg.decision_latency_cycles * cfg.cycle_seconds
            ),
        )

    def map(
        self,
        scenario: Scenario,
        schedule: Schedule | None = None,
        start_cycle: int = 0,
        stop_cycle: int | None = None,
        tracer: Tracer | NullTracer | None = None,
        kernel: SchedulingKernel | None = None,
        rebase: bool = True,
    ) -> MappingResult:
        """Run the heuristic to completion (or τ) on *scenario*.

        Parameters
        ----------
        schedule:
            Optional partially-built schedule to continue from — the
            dynamic re-mapping engine passes the surviving assignments
            after a machine loss.  Defaults to an empty schedule.
        start_cycle:
            Clock cycle to start at (e.g. the loss time when resuming).
        stop_cycle:
            Pause the loop once the clock reaches this cycle (exclusive),
            leaving the schedule partially built — the churn engine runs
            the heuristic segment-by-segment between grid events.
        tracer:
            Optional :class:`repro.obs.spans.Tracer`; records the
            ``map → kernel.tick → pool.build/select/commit`` span tree
            for Chrome-trace export.  ``None`` (default) uses the shared
            no-op tracer.
        kernel:
            Optional persistent :class:`~repro.core.kernel.SchedulingKernel`
            to drive instead of building a fresh one — the churn engine
            keeps one kernel per schedule across segments.  Must have been
            built (via :meth:`make_kernel`) for this *schedule*.
        rebase:
            Whether the kernel re-bases its pool on entry (invalidate +
            wake — safe against arbitrary outside mutation).  The session
            engine passes ``False`` after reporting every grid event
            through the kernel's precise ``note_*`` hooks, so the pool
            stays warm across segments; mappings are byte-identical
            either way.
        """
        cfg = self.config
        if tracer is None:
            tracer = NULL_TRACER
        if schedule is None:
            schedule = Schedule(scenario, plan_cache=cfg.plan_cache, tracer=tracer)
        elif schedule.scenario is not scenario:
            raise ValueError("schedule was built for a different scenario")
        elif tracer is not NULL_TRACER:
            schedule.tracer = tracer
        if tracer.enabled and tracer.perf is None:
            tracer.perf = schedule.perf
        if kernel is None:
            kernel = self.make_kernel(schedule)
        elif kernel.schedule is not schedule:
            raise ValueError("kernel was built for a different schedule")
        clock = SimulationClock(
            delta_t_cycles=cfg.delta_t_cycles,
            horizon_cycles=cfg.horizon_cycles,
            cycle_seconds=cfg.cycle_seconds,
            cycle=start_cycle,
        )
        trace = MappingTrace(ledger=DecisionLedger() if cfg.ledger else None)
        max_ticks = cfg.max_ticks
        if max_ticks is None:
            max_ticks = int(math.ceil(scenario.tau / clock.delta_t_seconds)) + 2

        stopwatch = Stopwatch()
        tracing = tracer.enabled
        with stopwatch, (
            tracer.span("map", heuristic=self.name, scenario=scenario.name)
            if tracing
            else NULL_SPAN
        ):
            kernel.run(
                self.policy,
                clock,
                trace,
                max_ticks=max_ticks,
                stop_cycle=stop_cycle,
                rebase=rebase,
                tracer=tracer,
            )
        if (
            trace.ledger is not None
            and not schedule.is_complete
            and stop_cycle is None
            and clock.exceeded(scenario.tau)
        ):
            # The run is incomplete because the clock passed τ: record the
            # terminal verdict for every task left behind.
            for task in range(scenario.n_tasks):
                if task not in schedule.assignments:
                    trace.ledger.reject(
                        clock=clock.now,
                        task=task,
                        machine=-1,
                        reason=DEADLINE_INFEASIBLE,
                        margin=clock.now - scenario.tau,
                        detail=(
                            f"clock {clock.now:.6g}s passed tau "
                            f"{scenario.tau:.6g}s with the task unmapped"
                        ),
                    )
        schedule.perf.inc("map.runs")
        schedule.perf.inc("map.seconds", stopwatch.elapsed)
        # Tick-level starvation surfaced as counters so it reaches the
        # perf JSON and the daemon's /metrics, not just in-memory traces.
        schedule.perf.inc("tick.count", trace.ticks)
        schedule.perf.inc("pool.empty_ticks", trace.empty_pool_ticks)
        trace.perf = schedule.perf.snapshot()
        return MappingResult(
            schedule=schedule,
            trace=trace,
            heuristic_seconds=stopwatch.elapsed,
            heuristic=self.name,
            weights=cfg.weights,
        )


class SLRH1(SlrhScheduler):
    """Variant 1 — one assignment per available machine per tick (§V)."""

    name = "SLRH-1"
    policy = TickPolicy(max_commits=1, refresh="none")


class SLRH2(SlrhScheduler):
    """Variant 2 — drain one stale pool per machine per tick (§V).

    The pool is built once; assignments continue (re-planning start times,
    but *not* re-evaluating versions or ordering) until the pool is
    exhausted or nothing further can start within the horizon.  The paper
    found this variant rarely maps all 1024 subtasks.
    """

    name = "SLRH-2"
    policy = TickPolicy(max_commits=None, refresh="replan")


class SLRH3(SlrhScheduler):
    """Variant 3 — rebuild and re-evaluate U after every assignment (§V).

    Children of a just-mapped subtask enter the pool immediately, so one
    machine can chew through an entire dependency chain within a single
    tick, provided each link starts within the horizon.
    """

    name = "SLRH-3"
    policy = TickPolicy(max_commits=None, refresh="rebuild")


#: Registry used by experiment drivers and the CLI examples.
SLRH_VARIANTS: dict[str, type[SlrhScheduler]] = {
    "SLRH-1": SLRH1,
    "SLRH-2": SLRH2,
    "SLRH-3": SLRH3,
}
