"""The Simplified Lagrangian Receding Horizon scheduler family (§IV, §V).

The SLRH is a *dynamic* (online) heuristic executed every ΔT clock cycles.
At each invocation it scans the machines in numerical order; for each
machine that is **available** (no execution committed at or beyond the
current clock) it builds the ordered candidate pool U
(:func:`repro.core.pool.build_candidate_pool`) and maps the highest-scoring
candidate that can *start* within the receding horizon ``[t, t + H]``.
Mapping a candidate schedules all of its incoming communications and debits
all energies immediately.

The three variants differ only in the per-machine inner loop:

* **SLRH-1** — one assignment per machine per tick (the baseline);
* **SLRH-2** — keeps assigning from the *same* pool (original version
  choices and ordering) until the pool is exhausted or nothing more can
  start within the horizon; the pool is **not** re-evaluated between
  assignments, so its scores and start times go progressively stale — the
  paper found this variant rarely maps all 1024 subtasks;
* **SLRH-3** — like SLRH-2 but rebuilds and re-evaluates U after *every*
  assignment (newly-ready children join immediately).

The loop terminates when every subtask is mapped, or the clock passes τ
(the run is then incomplete and will be rejected by the weight search), or
a safety tick cap is hit.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.core.feasibility import FeasibilityChecker
from repro.core.objective import ObjectiveFunction, Weights
from repro.core.pool import build_candidate_pool
from repro.obs.ledger import (
    DEADLINE_INFEASIBLE,
    ENERGY_INFEASIBLE,
    LOST_ON_SCORE,
    OUTSIDE_HORIZON,
    DecisionLedger,
)
from repro.obs.spans import NULL_SPAN, NULL_TRACER
from repro.sim.clock import SimulationClock
from repro.sim.schedule import Schedule
from repro.sim.trace import MappingTrace
from repro.util.timing import Stopwatch
from repro.util.units import CYCLE_SECONDS
from repro.workload.scenario import Scenario


@dataclass(frozen=True)
class SlrhConfig:
    """SLRH tuning knobs.

    Paper defaults: ΔT = 10 cycles, H = 100 cycles, 0.1 s cycles (§VII).
    """

    weights: Weights
    delta_t_cycles: int = 10
    horizon_cycles: int = 100
    cycle_seconds: float = CYCLE_SECONDS
    #: Hard cap on heuristic invocations; ``None`` derives it from τ.
    max_ticks: int | None = None
    #: Disable the worst-case comm-energy reserve (ablation only).
    comm_reserve: bool = True
    #: AET-term semantics of the objective (ablation; see ObjectiveFunction).
    aet_mode: str = "tent"
    #: Order in which the per-tick loop visits machines.  The paper checks
    #: them "in simple numerical order" (``index``); alternatives quantify
    #: that choice: ``battery`` visits the machine with the most available
    #: energy first (spreads energy drain), ``round_robin`` rotates the
    #: starting machine every tick (spreads the first-pick advantage).
    machine_order: str = "index"
    #: Reuse tentative :class:`~repro.sim.schedule.ExecutionPlan`s across
    #: pool evaluations when the state they depend on is unchanged (see
    #: the plan cache in :mod:`repro.sim.schedule`).  Mapping results are
    #: identical either way; disabling is for benchmarking.
    plan_cache: bool = True
    #: Cycles the mapper itself needs to produce a decision.  §IV warns
    #: that "the execution time of the heuristic in a real-time field
    #: application ... could lead to significantly larger minimum ΔT
    #: values"; with a non-zero latency every action decided at tick t is
    #: scheduled no earlier than t + latency, modelling an on-board
    #: controller that cannot act instantaneously.
    decision_latency_cycles: int = 0
    #: Record candidate *rejections* (with reason codes and margins) into
    #: a :class:`repro.obs.ledger.DecisionLedger` on the mapping trace —
    #: the input of ``python -m repro.experiments explain``.  Recording
    #: never changes the mapping; off by default so the hot path pays
    #: nothing.
    ledger: bool = False


#: Smallest heuristic runtime treated as distinguishable from zero when
#: dividing by it: the perf_counter resolution, floored at one nanosecond.
#: ``perf_counter`` can report 0.0 elapsed for a mapping faster than one
#: timer tick; clamping the denominator keeps ratio metrics finite.
MIN_TIMED_SECONDS: float = max(
    time.get_clock_info("perf_counter").resolution, 1e-9
)


@dataclass(frozen=True)
class MappingResult:
    """Outcome of one heuristic run on one scenario."""

    schedule: Schedule
    trace: MappingTrace
    heuristic_seconds: float
    heuristic: str
    weights: Weights

    @property
    def complete(self) -> bool:
        return self.schedule.is_complete

    @property
    def within_tau(self) -> bool:
        return self.schedule.makespan <= self.schedule.scenario.tau + 1e-9

    @property
    def success(self) -> bool:
        """The paper's acceptance rule: all subtasks mapped within τ (energy
        holds by construction)."""
        return self.complete and self.within_tau

    @property
    def t100(self) -> int:
        return self.schedule.t100

    @property
    def aet(self) -> float:
        return self.schedule.makespan

    @property
    def tec(self) -> float:
        return self.schedule.total_energy_consumed

    @property
    def perf(self) -> dict:
        """Performance-counter snapshot of the run (see :mod:`repro.perf`)."""
        return self.trace.perf

    def value_per_second(self) -> float:
        """Figure 7's metric: T100 per second of heuristic execution time.

        The denominator is clamped to the wall-clock timer's resolution:
        at reduced scales a mapping can complete in under one timer tick,
        and an ``inf`` here would poison every mean it is averaged into
        (the Figure 7 report).  The clamp makes the metric a finite
        "at least this many per second" in that regime.
        """
        return self.t100 / max(self.heuristic_seconds, MIN_TIMED_SECONDS)

    def summary(self) -> dict:
        s = self.schedule.summary()
        s.update(
            heuristic=self.heuristic,
            heuristic_seconds=self.heuristic_seconds,
            alpha=self.weights.alpha,
            beta=self.weights.beta,
            gamma=self.weights.gamma,
            success=self.success,
        )
        return s


class SlrhScheduler:
    """Base class implementing the clock-driven outer loop (Figure 1)."""

    #: Variant label used in reports; subclasses override.
    name = "SLRH"

    def __init__(self, config: SlrhConfig) -> None:
        self.config = config

    def _decision_time(self, clock: SimulationClock) -> float:
        """Earliest instant a decision made at this tick may take effect
        (the clock plus the configured decision latency)."""
        return clock.now + self.config.decision_latency_cycles * self.config.cycle_seconds

    # -- variant hook -------------------------------------------------------

    def _serve_machine(
        self,
        schedule: Schedule,
        machine: int,
        clock: SimulationClock,
        checker: FeasibilityChecker,
        objective: ObjectiveFunction,
        trace: MappingTrace,
    ) -> int:
        """Attempt assignment(s) on *machine*; returns how many were made."""
        raise NotImplementedError

    # -- shared machinery ----------------------------------------------------

    def _commit_first_startable(
        self,
        schedule: Schedule,
        pool,
        clock: SimulationClock,
        trace: MappingTrace,
        objective: ObjectiveFunction,
        replan: bool = False,
    ) -> bool:
        """Walk the ordered pool; commit the first candidate whose start
        falls inside the horizon.  With *replan*, each candidate's plan is
        recomputed first (SLRH-2's stale-pool walk).

        When the trace carries a decision ledger, every pool member that
        does *not* win this walk is recorded: horizon misses with their
        overshoot, replan infeasibilities, and — once a winner commits —
        the rest of the pool as ``lost_on_score`` against it (this is the
        per-tick "machine rejected" record the ``explain`` CLI surfaces).
        """
        ledger = trace.ledger
        for index, candidate in enumerate(pool):
            plan = candidate.plan
            if replan:
                if schedule.is_mapped(candidate.task):
                    continue
                plan = schedule.plan(
                    candidate.task,
                    candidate.version,
                    plan.machine,
                    not_before=self._decision_time(clock),
                )
                if not plan.feasible:
                    if ledger is not None:
                        ledger.reject(
                            clock=clock.now,
                            task=candidate.task,
                            machine=plan.machine,
                            version=plan.version.value,
                            reason=ENERGY_INFEASIBLE,
                            detail=f"stale-pool replan: {plan.reason}",
                        )
                    continue
            # §IV: horizon eligibility is judged on the "earliest possible
            # starting time ... given precedence and communication
            # requirements" — the machine's own queue does not disqualify a
            # candidate.  (For SLRH-1 the target machine is idle, so the two
            # notions coincide; for SLRH-2/3 this is what lets one machine
            # take several assignments in a single tick.)
            if not clock.within_horizon(plan.data_ready):
                if ledger is not None:
                    ledger.reject(
                        clock=clock.now,
                        task=candidate.task,
                        machine=plan.machine,
                        version=plan.version.value,
                        reason=OUTSIDE_HORIZON,
                        margin=plan.data_ready - clock.horizon_end,
                        score=candidate.score,
                        detail=(
                            f"data ready {plan.data_ready:.6g}s is past the "
                            f"horizon end {clock.horizon_end:.6g}s"
                        ),
                    )
                continue
            tracer = schedule.tracer
            span = (
                tracer.span(
                    "commit",
                    task=plan.task,
                    machine=plan.machine,
                    version=plan.version.value,
                )
                if tracer.enabled
                else NULL_SPAN
            )
            with span:
                schedule.commit(plan)
                trace.record_commit(
                    clock=clock.now,
                    plan=plan,
                    objective=objective.of_schedule(schedule),
                    pool_size=len(pool),
                    t100=schedule.t100,
                    tec=schedule.total_energy_consumed,
                    aet=schedule.makespan,
                )
            if ledger is not None:
                # Everyone below the winner lost this machine this walk.
                for loser in pool[index + 1:]:
                    if schedule.is_mapped(loser.task):
                        continue
                    ledger.reject(
                        clock=clock.now,
                        task=loser.task,
                        machine=loser.plan.machine,
                        version=loser.version.value,
                        reason=LOST_ON_SCORE,
                        margin=candidate.score - loser.score,
                        score=loser.score,
                        winner=candidate.task,
                        detail=(
                            f"task {candidate.task} won machine "
                            f"{loser.plan.machine} ({candidate.score:.6g} vs "
                            f"{loser.score:.6g})"
                        ),
                    )
            return True
        return False

    def map(
        self,
        scenario: Scenario,
        schedule: Schedule | None = None,
        start_cycle: int = 0,
        stop_cycle: int | None = None,
        tracer=None,
    ) -> MappingResult:
        """Run the heuristic to completion (or τ) on *scenario*.

        Parameters
        ----------
        schedule:
            Optional partially-built schedule to continue from — the
            dynamic re-mapping engine passes the surviving assignments
            after a machine loss.  Defaults to an empty schedule.
        start_cycle:
            Clock cycle to start at (e.g. the loss time when resuming).
        stop_cycle:
            Pause the loop once the clock reaches this cycle (exclusive),
            leaving the schedule partially built — the churn engine runs
            the heuristic segment-by-segment between grid events.
        tracer:
            Optional :class:`repro.obs.spans.Tracer`; records the
            ``map → tick → pool.build/select/commit`` span tree for
            Chrome-trace export.  ``None`` (default) uses the shared
            no-op tracer.
        """
        cfg = self.config
        if tracer is None:
            tracer = NULL_TRACER
        if schedule is None:
            schedule = Schedule(scenario, plan_cache=cfg.plan_cache, tracer=tracer)
        elif schedule.scenario is not scenario:
            raise ValueError("schedule was built for a different scenario")
        elif tracer is not NULL_TRACER:
            schedule.tracer = tracer
        if tracer.enabled and tracer.perf is None:
            tracer.perf = schedule.perf
        checker = FeasibilityChecker(scenario, comm_reserve=cfg.comm_reserve)
        objective = ObjectiveFunction.for_scenario(
            scenario, cfg.weights, aet_mode=cfg.aet_mode
        )
        clock = SimulationClock(
            delta_t_cycles=cfg.delta_t_cycles,
            horizon_cycles=cfg.horizon_cycles,
            cycle_seconds=cfg.cycle_seconds,
            cycle=start_cycle,
        )
        trace = MappingTrace(ledger=DecisionLedger() if cfg.ledger else None)
        max_ticks = cfg.max_ticks
        if max_ticks is None:
            max_ticks = int(math.ceil(scenario.tau / clock.delta_t_seconds)) + 2

        if cfg.machine_order not in ("index", "battery", "round_robin"):
            raise ValueError(f"unknown machine_order {cfg.machine_order!r}")

        def scan_order(tick_index: int) -> list[int]:
            n = scenario.n_machines
            if cfg.machine_order == "battery":
                return sorted(
                    range(n), key=lambda j: (-schedule.available_energy(j), j)
                )
            if cfg.machine_order == "round_robin":
                offset = tick_index % n
                return [(offset + k) % n for k in range(n)]
            return list(range(n))

        stopwatch = Stopwatch()
        tracing = tracer.enabled
        with stopwatch, (
            tracer.span("map", heuristic=self.name, scenario=scenario.name)
            if tracing
            else NULL_SPAN
        ):
            for tick_index in range(max_ticks):
                if stop_cycle is not None and clock.cycle >= stop_cycle:
                    break
                trace.note_tick()
                tick_span = (
                    tracer.span("tick", tick=tick_index, clock=clock.now)
                    if tracing
                    else NULL_SPAN
                )
                with tick_span:
                    for j in scan_order(tick_index):
                        trace.note_machine_scan()
                        if not schedule.machine_available(j, clock.now):
                            continue
                        made = self._serve_machine(
                            schedule, j, clock, checker, objective, trace
                        )
                        if made == 0:
                            trace.note_empty_pool()
                        if schedule.is_complete:
                            break
                if schedule.is_complete:
                    break
                clock.tick()
                if clock.exceeded(scenario.tau):
                    break
        if (
            trace.ledger is not None
            and not schedule.is_complete
            and stop_cycle is None
            and clock.exceeded(scenario.tau)
        ):
            # The run is incomplete because the clock passed τ: record the
            # terminal verdict for every task left behind.
            for task in range(scenario.n_tasks):
                if task not in schedule.assignments:
                    trace.ledger.reject(
                        clock=clock.now,
                        task=task,
                        machine=-1,
                        reason=DEADLINE_INFEASIBLE,
                        margin=clock.now - scenario.tau,
                        detail=(
                            f"clock {clock.now:.6g}s passed tau "
                            f"{scenario.tau:.6g}s with the task unmapped"
                        ),
                    )
        schedule.perf.inc("map.runs")
        schedule.perf.inc("map.seconds", stopwatch.elapsed)
        # Tick-level starvation surfaced as counters so it reaches the
        # perf JSON and the daemon's /metrics, not just in-memory traces.
        schedule.perf.inc("tick.count", trace.ticks)
        schedule.perf.inc("pool.empty_ticks", trace.empty_pool_ticks)
        trace.perf = schedule.perf.snapshot()
        return MappingResult(
            schedule=schedule,
            trace=trace,
            heuristic_seconds=stopwatch.elapsed,
            heuristic=self.name,
            weights=cfg.weights,
        )


class SLRH1(SlrhScheduler):
    """Variant 1 — one assignment per available machine per tick (§V)."""

    name = "SLRH-1"

    def _serve_machine(self, schedule, machine, clock, checker, objective, trace) -> int:
        pool = build_candidate_pool(
            schedule, checker, objective, machine,
            not_before=self._decision_time(clock),
            ledger=trace.ledger,
        )
        if not pool:
            return 0
        made = self._commit_first_startable(schedule, pool, clock, trace, objective)
        return 1 if made else 0


class SLRH2(SlrhScheduler):
    """Variant 2 — drain one stale pool per machine per tick (§V).

    The pool is built once; assignments continue (re-planning start times,
    but *not* re-evaluating versions or ordering) until the pool is
    exhausted or nothing further can start within the horizon.
    """

    name = "SLRH-2"

    def _serve_machine(self, schedule, machine, clock, checker, objective, trace) -> int:
        pool = build_candidate_pool(
            schedule, checker, objective, machine,
            not_before=self._decision_time(clock),
            ledger=trace.ledger,
        )
        if not pool:
            return 0
        made = 0
        if self._commit_first_startable(schedule, pool, clock, trace, objective):
            made += 1
            # Subsequent walks must re-plan: the machine calendar moved.
            while self._commit_first_startable(
                schedule, pool, clock, trace, objective, replan=True
            ):
                made += 1
                if schedule.is_complete:
                    break
        return made


class SLRH3(SlrhScheduler):
    """Variant 3 — rebuild and re-evaluate U after every assignment (§V).

    Children of a just-mapped subtask enter the pool immediately, so one
    machine can chew through an entire dependency chain within a single
    tick, provided each link starts within the horizon.
    """

    name = "SLRH-3"

    def _serve_machine(self, schedule, machine, clock, checker, objective, trace) -> int:
        made = 0
        while True:
            pool = build_candidate_pool(
                schedule, checker, objective, machine,
                not_before=self._decision_time(clock),
                ledger=trace.ledger,
            )
            if not pool:
                break
            if not self._commit_first_startable(schedule, pool, clock, trace, objective):
                break
            made += 1
            if schedule.is_complete:
                break
        return made


#: Registry used by experiment drivers and the CLI examples.
SLRH_VARIANTS: dict[str, type[SlrhScheduler]] = {
    "SLRH-1": SLRH1,
    "SLRH-2": SLRH2,
    "SLRH-3": SLRH3,
}
