"""The Lagrangian-style global objective function (§IV).

The SLRH treats the hard constraints on energy and application execution
time as *soft biases* folded into one scalar objective via constant
Lagrangian multipliers (the "simplified" in SLRH):

.. math::

   ObjFn(\\alpha, \\beta, \\gamma)
       = \\alpha \\frac{T_{100}}{|T|}
       - \\beta  \\frac{TEC}{TSE}
       + \\gamma \\frac{AET}{\\tau}

with α, β, γ ∈ [0, 1] and α + β + γ = 1, so ObjFn itself stays within
[−1, 1] (each term is normalised to [0, 1]).  The *positive* sign on the
AET term is deliberate and unusual: the paper found that penalising AET
produced very short schedules with poor T100, so the objective instead
*rewards* using the time budget, and the τ constraint is enforced outside
the objective by rejecting runs whose AET exceeds τ (§IV, last paragraph).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.sim.schedule import ExecutionPlan, Schedule
from repro.workload.scenario import Scenario

_SIMPLEX_TOL = 1e-9


@dataclass(frozen=True)
class Weights:
    """A point (α, β, γ) on the objective weight simplex.

    Only two weights are free; :meth:`from_alpha_beta` fills γ = 1 − α − β,
    matching how the paper's experiments sweep (α, β).
    """

    alpha: float
    beta: float
    gamma: float

    def __post_init__(self) -> None:
        for label, w in (("alpha", self.alpha), ("beta", self.beta), ("gamma", self.gamma)):
            if not -_SIMPLEX_TOL <= w <= 1 + _SIMPLEX_TOL:
                raise ValueError(f"{label} = {w} outside [0, 1]")
        total = self.alpha + self.beta + self.gamma
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"weights must sum to 1, got {total}")

    @classmethod
    def from_alpha_beta(cls, alpha: float, beta: float) -> "Weights":
        """Build weights from the two free parameters (γ = 1 − α − β)."""
        gamma = 1.0 - alpha - beta
        if gamma < -_SIMPLEX_TOL:
            raise ValueError(f"alpha + beta = {alpha + beta} exceeds 1")
        return cls(alpha=alpha, beta=beta, gamma=max(0.0, gamma))

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.alpha, self.beta, self.gamma)


#: How the γ·AET/τ term treats schedules that overshoot τ (see
#: :meth:`ObjectiveFunction.value`).
AetMode = Literal["tent", "clamp", "raw", "negative"]


@dataclass(frozen=True)
class ObjectiveFunction:
    """ObjFn bound to one scenario's normalisation constants (|T|, TSE, τ).

    The ``aet_mode`` field pins down a semantics the paper leaves implicit.
    The γ term carries a *positive* sign "to encourage use of all of the
    available time within the specified time constraint", yet the same
    section says the hard boundary on AET is "expressed as a soft bias in
    the objective function".  A bias that keeps rewarding AET past τ is no
    constraint at all — a literal reading turns the static Max-Max into an
    AET maximiser that drags every subtask onto the slowest machines.  The
    three selectable semantics:

    ``tent`` (default)
        Reward rises linearly to its maximum at AET = τ and decays
        symmetrically beyond, reaching zero at 2τ — the time constraint
        acts as a genuine Lagrangian penalty while still encouraging full
        use of the budget.
    ``clamp``
        Reward saturates at τ (never discourages overshoot).  Ablation.
    ``raw``
        The uninterpreted formula γ·AET/τ.  Ablation.
    ``negative``
        −γ·AET/τ — the sign the paper *tried and rejected*: it "caused the
        heuristic to produce very short AET solutions, but with
        correspondingly lower T100 values" (§IV).  Ablation reproducing
        that design discussion.

    The ablation benchmark ``benchmarks/test_ablation_objective.py``
    quantifies the difference.
    """

    weights: Weights
    n_tasks: int
    total_system_energy: float
    tau: float
    aet_mode: AetMode = "tent"

    def __post_init__(self) -> None:
        if self.n_tasks < 1:
            raise ValueError("n_tasks must be >= 1")
        if self.total_system_energy <= 0:
            raise ValueError("total_system_energy must be positive")
        if self.tau <= 0:
            raise ValueError("tau must be positive")
        if self.aet_mode not in ("tent", "clamp", "raw", "negative"):
            raise ValueError(f"unknown aet_mode {self.aet_mode!r}")

    @classmethod
    def for_scenario(
        cls, scenario: Scenario, weights: Weights, aet_mode: AetMode = "tent"
    ) -> "ObjectiveFunction":
        return cls(
            weights=weights,
            n_tasks=scenario.n_tasks,
            total_system_energy=scenario.grid.total_system_energy,
            tau=scenario.tau,
            aet_mode=aet_mode,
        )

    def _aet_term(self, aet: float) -> float:
        ratio = aet / self.tau
        if self.aet_mode == "raw":
            return ratio
        if self.aet_mode == "clamp":
            return min(ratio, 1.0)
        if self.aet_mode == "negative":
            return -ratio
        return max(0.0, min(ratio, 2.0 - ratio))  # tent

    def value(self, t100: int, tec: float, aet: float) -> float:
        """ObjFn at the given aggregate state (see class docstring for the
        AET-term semantics)."""
        w = self.weights
        return (
            w.alpha * (t100 / self.n_tasks)
            - w.beta * (tec / self.total_system_energy)
            + w.gamma * self._aet_term(aet)
        )

    def of_schedule(self, schedule: Schedule) -> float:
        """ObjFn of a schedule's current aggregate state."""
        return self.value(schedule.t100, schedule.total_energy_consumed, schedule.makespan)

    def after_plan(self, schedule: Schedule, plan: ExecutionPlan) -> float:
        """ObjFn the schedule *would* have after committing *plan*.

        This is the "impact on the global objective function" the SLRH uses
        to select versions and order the candidate pool (§IV): T100, TEC and
        AET are advanced hypothetically, nothing is mutated.
        """
        t100 = schedule.t100 + (1 if plan.version.counts_toward_t100 else 0)
        tec = schedule.total_energy_consumed + plan.energy_delta
        aet = max(schedule.makespan, plan.finish)
        return self.value(t100, tec, aet)
