"""Candidate feasibility (§IV).

A subtask is *feasible* on a target machine at the current iteration iff

(a) all of its parent subtasks are already mapped, and
(b) enough energy remains on the target machine for the subtask to run at
    the **secondary** version *and* transmit all of its output data items —
    costed at the **worst case**: every child assumed to sit across the
    lowest-bandwidth link in the system.

Rule (b) is deliberately conservative: the children's machines are unknown
at pool-construction time, so the check reserves the maximum the subtask
could possibly need.  (The paper notes communication energy proved
negligible in its runs, so the over-reservation rarely bites; the ablation
bench ``benchmarks/test_ablation_feasibility.py`` measures exactly that.)

The Max-Max baseline uses a variant of rule (b): each version is assessed
independently (its own execution energy + worst-case comm at that version's
output volume), so U may hold *both* versions of one subtask (§V).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.schedule import Schedule
from repro.workload.scenario import Scenario
from repro.workload.versions import SECONDARY, Version


@dataclass(frozen=True)
class FeasibilityChecker:
    """Per-scenario feasibility logic with precomputed worst-case CMT."""

    scenario: Scenario
    #: Include the worst-case outgoing-communication reserve in rule (b).
    #: Disabling this is an ablation, not paper behaviour.
    comm_reserve: bool = True
    #: Memo for :meth:`required_energy` — a pure function of the (static)
    #: scenario, so entries never invalidate.
    _required: dict = field(default_factory=dict, repr=False, compare=False)

    def worst_case_comm_energy(self, task: int, machine: int, version: Version) -> float:
        """Energy to push *task*'s outputs (at *version*) from *machine*
        across the system's lowest-bandwidth link."""
        total_bits = sum(
            self.scenario.data_bits(task, child, version)
            for child in self.scenario.dag.children[task]
        )
        return self.scenario.network.worst_case_transfer_energy(machine, total_bits)

    def required_energy(self, task: int, machine: int, version: Version) -> float:
        """Execution energy at *version* plus (optionally) the comm reserve."""
        key = (task, machine, version)
        cached = self._required.get(key)
        if cached is None:
            cached = self.scenario.compute_energy(task, machine, version)
            if self.comm_reserve:
                cached += self.worst_case_comm_energy(task, machine, version)
            self._required[key] = cached
        return cached

    def is_feasible(
        self,
        schedule: Schedule,
        task: int,
        machine: int,
        version: Version = SECONDARY,
    ) -> bool:
        """SLRH rule: parents mapped and rule (b) at the given version.

        SLRH always checks at the secondary version — the minimum commitment
        that guarantees the subtask can run *somehow* (§IV).  Max-Max passes
        each version explicitly.
        """
        if task in schedule.assignments:
            return False
        if any(p not in schedule.assignments for p in self.scenario.dag.parents[task]):
            return False
        required = self.required_energy(task, machine, version)
        available = schedule.available_energy(machine)
        return required <= available * (1 + 1e-12) + 1e-12
