"""Experiment drivers: one entry point per paper table and figure.

Every artefact in the paper's evaluation (§VI, §VII) has a driver here that
regenerates it — the same workload protocol (ETC × DAG cross product shared
across grid cases), the same two-stage weight optimisation, the same
metrics.  Drivers take an :class:`~repro.experiments.scale.ExperimentScale`
so the study can run anywhere from smoke-test size to the paper's full
|T| = 1024, 10 × 10 protocol (see DESIGN.md §3 on why reduced scale is the
default).
"""

from repro.experiments.comparison import (
    CaseComparison,
    ComparisonResults,
    HeuristicScenarioOutcome,
    run_comparison,
)
from repro.experiments.figures import (
    figure2_delta_t_sweep,
    figure3_weight_sensitivity,
    figure4_t100_comparison,
    figure5_vs_upper_bound,
    figure6_execution_time,
    figure7_value_metric,
)
from repro.experiments.reporting import format_table
from repro.experiments.scale import (
    MEDIUM_SCALE,
    PAPER_SCALE,
    SMALL_SCALE,
    SMOKE_SCALE,
    ExperimentScale,
    scale_from_env,
)
from repro.experiments.tables import (
    table1_configurations,
    table2_machine_parameters,
    table3_min_relative_speed,
    table4_upper_bound,
)

__all__ = [
    "ExperimentScale",
    "SMOKE_SCALE",
    "SMALL_SCALE",
    "MEDIUM_SCALE",
    "PAPER_SCALE",
    "scale_from_env",
    "table1_configurations",
    "table2_machine_parameters",
    "table3_min_relative_speed",
    "table4_upper_bound",
    "figure2_delta_t_sweep",
    "figure3_weight_sensitivity",
    "figure4_t100_comparison",
    "figure5_vs_upper_bound",
    "figure6_execution_time",
    "figure7_value_metric",
    "run_comparison",
    "ComparisonResults",
    "CaseComparison",
    "HeuristicScenarioOutcome",
    "format_table",
]
