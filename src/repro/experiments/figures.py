"""Drivers for the paper's Figures 2-7.

Each driver returns structured data *and* can render the same series the
paper plots (via ``render_*`` helpers), so benchmarks print comparable
rows.  Figures 3-7 are views over the shared
:func:`~repro.experiments.comparison.run_comparison` study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.objective import Weights
from repro.core.slrh import SLRH1
from repro.experiments.comparison import (
    CASES,
    PLOTTED_HEURISTICS,
    ComparisonResults,
    run_comparison,
)
from repro.experiments.reporting import format_table
from repro.experiments.scale import ExperimentScale, SMALL_SCALE
from repro.tuning.sweeps import DeltaTSweepPoint, sweep_delta_t

#: Fixed weights used for the Figure 2 ΔT sweep.  The paper used the
#: per-scenario optimum; a mid-simplex point reproduces the same shape
#: without nesting a weight search inside the sweep.
FIG2_WEIGHTS = Weights.from_alpha_beta(0.5, 0.2)


@dataclass
class Figure2Result:
    """ΔT sweep series for SLRH-1 on ETC 0 with two DAGs (Case A)."""

    delta_t_values: tuple[int, ...]
    #: One series of sweep points per DAG.
    series: list[list[DeltaTSweepPoint]]

    def render(self) -> str:
        rows = []
        for dag_idx, points in enumerate(self.series):
            for p in points:
                rows.append(
                    [f"DAG {dag_idx}", p.value, p.t100, p.mapped,
                     round(p.heuristic_seconds, 4), p.success]
                )
        return format_table(
            ["series", "delta_t (cycles)", "T100", "mapped", "heuristic s", "ok"],
            rows,
            title="Figure 2. Impact of dT on SLRH-1 (T100 and heuristic runtime)",
        )


def figure2_delta_t_sweep(scale: ExperimentScale = SMALL_SCALE) -> Figure2Result:
    """Figure 2: T100 and heuristic runtime vs ΔT, SLRH-1, ETC 0, two DAGs."""
    suite = scale.suite()
    n_dags = min(2, suite.n_dag)
    series = []
    for d in range(n_dags):
        scenario = suite.scenario(0, d, "A")
        series.append(
            sweep_delta_t(SLRH1, scenario, FIG2_WEIGHTS, values=scale.delta_t_values)
        )
    return Figure2Result(delta_t_values=tuple(scale.delta_t_values), series=series)


@dataclass
class Figure3Result:
    """Optimal-weight statistics per heuristic per case (Figure 3 a-d)."""

    comparison: ComparisonResults

    def render(self) -> str:
        rows = []
        for heuristic in self.comparison.heuristics():
            for case in CASES:
                cell = self.comparison.cell(heuristic, case)
                a_mean, a_min, a_max = cell.alpha_stats()
                b_mean, b_min, b_max = cell.beta_stats()
                rows.append(
                    [heuristic, case, round(cell.success_rate, 2),
                     a_mean, a_min, a_max, b_mean, b_min, b_max]
                )
        return format_table(
            ["heuristic", "case", "success", "a mean", "a min", "a max",
             "b mean", "b min", "b max"],
            rows,
            title="Figure 3. Optimal objective-function weights (alpha/beta) per case",
        )

    def slrh2_success_rate(self) -> float | None:
        """SLRH-2's mapping success rate (the paper: 'rarely produce a
        successful mapping'); None if SLRH-2 was not part of the study."""
        key = ("SLRH-2", "A")
        if key not in self.comparison.cells:
            return None
        rates = [
            self.comparison.cell("SLRH-2", case).success_rate for case in CASES
        ]
        return sum(rates) / len(rates)


def figure3_weight_sensitivity(scale: ExperimentScale = SMALL_SCALE) -> Figure3Result:
    """Figure 3: average/min/max optimal (α, β) per case and heuristic."""
    return Figure3Result(comparison=run_comparison(scale))


def _metric_figure(scale: ExperimentScale, attr: str, title: str):
    comparison = run_comparison(scale)
    rows = []
    for heuristic in PLOTTED_HEURISTICS:
        row: list = [heuristic]
        for case in CASES:
            cell = comparison.cell(heuristic, case)
            row.append(getattr(cell, attr))
        rows.append(row)
    return rows, format_table(["heuristic", "Case A", "Case B", "Case C"], rows, title=title)


@dataclass
class MetricFigureResult:
    """A per-heuristic × per-case metric grid (Figures 4-7)."""

    rows: list[list]
    text: str

    def value(self, heuristic: str, case: str) -> float:
        for row in self.rows:
            if row[0] == heuristic:
                return row[1 + CASES.index(case)]
        raise KeyError(heuristic)

    def render(self) -> str:
        return self.text


def figure4_t100_comparison(scale: ExperimentScale = SMALL_SCALE) -> MetricFigureResult:
    """Figure 4: mean T100 per heuristic per case (optimal weights)."""
    rows, text = _metric_figure(
        scale, "t100_mean",
        f"Figure 4. Mean T100 per heuristic per case ({scale.name} scale)",
    )
    return MetricFigureResult(rows=rows, text=text)


def figure5_vs_upper_bound(scale: ExperimentScale = SMALL_SCALE) -> MetricFigureResult:
    """Figure 5: mean T100 / upper bound per heuristic per case."""
    rows, text = _metric_figure(
        scale, "vs_bound_mean",
        f"Figure 5. Mean T100 relative to the upper bound ({scale.name} scale)",
    )
    return MetricFigureResult(rows=rows, text=text)


def figure6_execution_time(scale: ExperimentScale = SMALL_SCALE) -> MetricFigureResult:
    """Figure 6: mean heuristic execution time per heuristic per case."""
    rows, text = _metric_figure(
        scale, "exec_time_mean",
        f"Figure 6. Mean heuristic execution time, seconds ({scale.name} scale)",
    )
    return MetricFigureResult(rows=rows, text=text)


def figure7_value_metric(scale: ExperimentScale = SMALL_SCALE) -> MetricFigureResult:
    """Figure 7: mean T100 per second of heuristic execution time."""
    rows, text = _metric_figure(
        scale, "value_metric_mean",
        f"Figure 7. T100 per second of heuristic execution time ({scale.name} scale)",
    )
    return MetricFigureResult(rows=rows, text=text)
