"""Drivers for the paper's Tables 1-4.

* **Table 1** — the three grid configurations (constants).
* **Table 2** — machine class parameters (constants, scaled batteries noted).
* **Table 3** — average minimum relative speed MR(j) ± σ per case, computed
  across the scale's ETC matrices exactly as §VI describes.
* **Table 4** — the equivalent-computing-cycles upper bound on T100, one
  row per ETC matrix, one column per case.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bounds.upper_bound import upper_bound
from repro.experiments.reporting import format_table, mean_std
from repro.experiments.scale import ExperimentScale, SMALL_SCALE
from repro.grid.machine import FAST_MACHINE, SLOW_MACHINE
from repro.util.units import MEGABIT
from repro.workload.etc import min_relative_speed
from repro.workload.scenario import CASE_COLUMNS

CASES = ("A", "B", "C")


def table1_configurations() -> list[dict]:
    """Table 1 rows: machines per class in each case."""
    rows = []
    for case in CASES:
        cols = CASE_COLUMNS[case]
        rows.append(
            {
                "case": case,
                "n_fast": sum(1 for j in cols if j < 2),
                "n_slow": sum(1 for j in cols if j >= 2),
            }
        )
    return rows


def table2_machine_parameters() -> list[dict]:
    """Table 2 rows: B, C, E, BW per machine class (paper-scale batteries)."""
    rows = []
    for spec in (FAST_MACHINE, SLOW_MACHINE):
        rows.append(
            {
                "class": spec.machine_class.value,
                "B_energy_units": spec.battery,
                "C_units_per_s": spec.transmit_rate,
                "E_units_per_s": spec.compute_rate,
                "BW_mbit_per_s": spec.bandwidth / MEGABIT,
            }
        )
    return rows


@dataclass(frozen=True)
class MinRatioStats:
    """Mean (std) of MR(j) for one machine in one case, across ETCs."""

    case: str
    machine: str
    mean: float
    std: float


def table3_min_relative_speed(scale: ExperimentScale = SMALL_SCALE) -> list[MinRatioStats]:
    """Table 3: average minimum relative speed per non-reference machine.

    The reference machine (fast-0, MR ≡ 1) is omitted, as in the paper.
    """
    suite = scale.suite()
    out: list[MinRatioStats] = []
    for case in CASES:
        grid = suite.case_grid(case)
        cols = list(CASE_COLUMNS[case])
        per_machine: list[list[float]] = [[] for _ in cols]
        for etc in suite.etcs:
            mr = min_relative_speed(etc[:, cols], reference=0)
            for k in range(len(cols)):
                per_machine[k].append(float(mr[k]))
        for k in range(1, len(cols)):  # skip the reference machine
            mean, std = mean_std(per_machine[k])
            out.append(
                MinRatioStats(case=case, machine=grid[k].name, mean=mean, std=std)
            )
    return out


def table4_upper_bound(scale: ExperimentScale = SMALL_SCALE) -> list[dict]:
    """Table 4: T100 upper bound per ETC matrix per case.

    DAG choice does not affect the bound (it ignores precedence), so one
    row per ETC matrix suffices, exactly as in the paper.
    """
    suite = scale.suite()
    rows = []
    for e in range(suite.n_etc):
        row: dict = {"etc": e}
        for case in CASES:
            result = upper_bound(suite.scenario(e, 0, case))
            row[f"case_{case}"] = result.t100_bound
            row[f"case_{case}_limit"] = result.limiting_resource
        rows.append(row)
    return rows


def render_tables(scale: ExperimentScale = SMALL_SCALE) -> str:
    """All four tables as one text report."""
    parts = [
        format_table(
            ["case", "# fast", "# slow"],
            [[r["case"], r["n_fast"], r["n_slow"]] for r in table1_configurations()],
            title="Table 1. Simulation configurations",
        ),
        format_table(
            ["class", "B(j)", "C(j) u/s", "E(j) u/s", "BW Mbit/s"],
            [
                [r["class"], r["B_energy_units"], r["C_units_per_s"],
                 r["E_units_per_s"], r["BW_mbit_per_s"]]
                for r in table2_machine_parameters()
            ],
            title="Table 2. Machine class parameters (paper-scale batteries)",
        ),
        format_table(
            ["case", "machine", "mean MR", "std"],
            [[s.case, s.machine, s.mean, s.std] for s in table3_min_relative_speed(scale)],
            title=f"Table 3. Average minimum relative speed ({scale.name} scale)",
        ),
        format_table(
            ["ETC", "Case A", "Case B", "Case C", "C limit"],
            [
                [r["etc"], r["case_A"], r["case_B"], r["case_C"], r["case_C_limit"]]
                for r in table4_upper_bound(scale)
            ],
            title=f"Table 4. Upper bound on T100 ({scale.name} scale, |T|={scale.n_tasks})",
        ),
    ]
    return "\n\n".join(parts)
