"""Plain-text rendering of experiment results.

Benchmarks print the same rows/series the paper's tables and figures
report; :func:`format_table` keeps the output aligned and diff-friendly.
"""

from __future__ import annotations

import math
from typing import Sequence


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
) -> str:
    """Render *rows* as an aligned monospace table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def mean_std(values: Sequence[float]) -> tuple[float, float]:
    """Sample mean and (population) standard deviation; (nan, nan) if empty.

    Raises
    ------
    ValueError
        If any input is non-finite.  A single ``inf`` or ``nan`` silently
        poisons every aggregate it is averaged into (this corrupted the
        Figure 7 value-metric report when a sub-tick mapping produced an
        infinite T100/second) — fail loudly at the source instead.
    """
    if not values:
        return (float("nan"), float("nan"))
    for v in values:
        if not math.isfinite(v):
            raise ValueError(f"non-finite value {v!r} in aggregate input")
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    return (mean, var**0.5)
