"""Shared engine behind Figures 3-7.

The paper evaluates every heuristic at its *per-scenario optimal* (α, β) —
found by the §VII two-stage search — then averages T100, upper-bound
ratio, heuristic execution time and the value metric over the ETC × DAG
cross product, per grid case.  All four result figures are views of this
one expensive computation, so it runs once per scale (memoised by preset
name) and the figure drivers slice it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.bounds.upper_bound import upper_bound
from repro.core.objective import Weights
from repro.core.slrh import MIN_TIMED_SECONDS, MappingResult
from repro.heuristics import (
    WEIGHTED_HEURISTICS,
    make_scheduler,
    normalize_heuristic,
)
from repro.experiments.reporting import mean_std
from repro.experiments.scale import ExperimentScale, SMALL_SCALE
from repro.perf import merge_snapshots
from repro.tuning.weight_search import WeightSearchResult, search_weights
from repro.util.parallel import resolve_jobs

CASES = ("A", "B", "C")

#: The heuristics the paper carries through Figures 4-7.
PLOTTED_HEURISTICS = ("SLRH-1", "SLRH-3", "Max-Max")


@dataclass(frozen=True)
class HeuristicFactory:
    """Weight-point → runnable heuristic, for the §VII search.

    A plain dataclass (not a lambda) so it pickles: worker processes of
    the parallel weight search receive the factory itself.  Dispatch goes
    through the shared registry in :mod:`repro.heuristics`, the same code
    path the batch CLI and the service use.
    """

    heuristic: str

    def __call__(self, w: Weights):
        return make_scheduler(self.heuristic, weights=w)


def make_factory(heuristic: str) -> HeuristicFactory:
    """Weight-point → runnable heuristic, for the §VII search."""
    if normalize_heuristic(heuristic) not in WEIGHTED_HEURISTICS:
        raise KeyError(
            f"heuristic {heuristic!r} has no objective weights to search"
        )
    return HeuristicFactory(heuristic)


@dataclass(frozen=True)
class HeuristicScenarioOutcome:
    """One (heuristic, scenario, case) cell: the optimal-weight run."""

    heuristic: str
    case: str
    etc: int
    dag: int
    succeeded: bool
    alpha: float
    beta: float
    t100: int
    aet: float
    heuristic_seconds: float
    ub: int
    evaluations: int
    #: Perf-counter snapshot summed over the cell's whole weight search
    #: (see :mod:`repro.perf`); travels back from worker processes.
    perf: dict = field(default_factory=dict, compare=False)

    @property
    def vs_bound(self) -> float:
        return self.t100 / self.ub if self.ub else float("nan")

    @property
    def value_metric(self) -> float:
        """Figure 7: T100 per second of heuristic execution time.

        Like :meth:`MappingResult.value_per_second`, the denominator is
        clamped to the timer resolution so a sub-tick mapping yields a
        large *finite* value — never the ``inf``/``nan`` that the
        hardened :func:`~repro.experiments.reporting.mean_std` rejects.
        """
        return self.t100 / max(self.heuristic_seconds, MIN_TIMED_SECONDS)


@dataclass
class CaseComparison:
    """Aggregates for one (heuristic, case) pair."""

    heuristic: str
    case: str
    outcomes: list[HeuristicScenarioOutcome] = field(default_factory=list)

    @property
    def successes(self) -> list[HeuristicScenarioOutcome]:
        return [o for o in self.outcomes if o.succeeded]

    @property
    def success_rate(self) -> float:
        return len(self.successes) / len(self.outcomes) if self.outcomes else 0.0

    def _stat(self, attr: str) -> tuple[float, float]:
        return mean_std([getattr(o, attr) for o in self.successes])

    @property
    def t100_mean(self) -> float:
        return self._stat("t100")[0]

    @property
    def vs_bound_mean(self) -> float:
        return self._stat("vs_bound")[0]

    @property
    def exec_time_mean(self) -> float:
        return self._stat("heuristic_seconds")[0]

    @property
    def value_metric_mean(self) -> float:
        return self._stat("value_metric")[0]

    def alpha_stats(self) -> tuple[float, float, float]:
        """(mean, min, max) of the optimal α across scenarios (Fig. 3)."""
        values = [o.alpha for o in self.successes]
        if not values:
            return (float("nan"),) * 3
        return (sum(values) / len(values), min(values), max(values))

    def beta_stats(self) -> tuple[float, float, float]:
        """(mean, min, max) of the optimal β across scenarios (Fig. 3)."""
        values = [o.beta for o in self.successes]
        if not values:
            return (float("nan"),) * 3
        return (sum(values) / len(values), min(values), max(values))


@dataclass
class ComparisonResults:
    """The full study: every (heuristic, case) aggregate plus scenario cells."""

    scale_name: str
    cells: dict[tuple[str, str], CaseComparison] = field(default_factory=dict)

    def cell(self, heuristic: str, case: str) -> CaseComparison:
        return self.cells[(heuristic, case)]

    def heuristics(self) -> list[str]:
        return sorted({h for (h, _) in self.cells}, key=_heuristic_order)

    def perf_snapshot(self) -> dict[str, float]:
        """Perf counters (see :mod:`repro.perf`) summed over every cell's
        weight search — the payload of the CLI's perf JSON artefact."""
        return merge_snapshots(
            o.perf for cell in self.cells.values() for o in cell.outcomes
        )


def _heuristic_order(name: str) -> tuple:
    order = {"SLRH-1": 0, "SLRH-2": 1, "SLRH-3": 2, "Max-Max": 3}
    return (order.get(name, 9), name)


def _search_to_outcome(
    heuristic: str,
    case: str,
    etc: int,
    dag: int,
    ws: WeightSearchResult,
    ub: int,
) -> HeuristicScenarioOutcome:
    if ws.best_result is None:
        return HeuristicScenarioOutcome(
            heuristic=heuristic, case=case, etc=etc, dag=dag,
            succeeded=False, alpha=float("nan"), beta=float("nan"),
            t100=0, aet=float("nan"), heuristic_seconds=float("nan"),
            ub=ub, evaluations=ws.evaluations, perf=ws.perf,
        )
    best: MappingResult = ws.best_result
    w: Weights = best.weights
    return HeuristicScenarioOutcome(
        heuristic=heuristic, case=case, etc=etc, dag=dag,
        succeeded=True, alpha=w.alpha, beta=w.beta,
        t100=best.t100, aet=best.aet,
        heuristic_seconds=best.heuristic_seconds,
        ub=ub, evaluations=ws.evaluations, perf=ws.perf,
    )


def _solve_cell(
    scale: ExperimentScale, heuristic: str, case: str, e: int, d: int
) -> HeuristicScenarioOutcome:
    """One (heuristic, case, ETC, DAG) cell: weight-search + bound.

    Module-level (picklable) so worker processes can run it; each worker
    rebuilds the suite once per process via the scale's cached
    constructor.
    """
    suite = scale.suite()
    scenario = suite.scenario(e, d, case)
    ub = upper_bound(scenario).t100_bound
    ws = search_weights(
        scenario,
        make_factory(heuristic),
        coarse_step=scale.coarse_step,
        fine_step=scale.fine_step,
        fine=scale.fine,
        # The comparison parallelises over cells; pin the inner weight
        # search to serial so an inherited REPRO_JOBS cannot nest pools.
        n_jobs=1,
    )
    return _search_to_outcome(heuristic, case, e, d, ws, ub)


def run_comparison(
    scale: ExperimentScale = SMALL_SCALE,
    heuristics: tuple[str, ...] | None = None,
    n_jobs: int | None = None,
) -> ComparisonResults:
    """Run the full §VII study at *scale* (memoised per preset name).

    ``n_jobs`` > 1 fans the (heuristic, case, ETC, DAG) cells out over a
    process pool — the cells are embarrassingly parallel, and at medium
    or paper scale the study is hours of single-core work.  Defaults to
    the ``REPRO_JOBS`` environment variable, else serial.
    """
    if heuristics is None:
        heuristics = PLOTTED_HEURISTICS + (("SLRH-2",) if scale.include_slrh2 else ())
        heuristics = tuple(sorted(set(heuristics), key=_heuristic_order))
    n_jobs = resolve_jobs(n_jobs)
    return _run_comparison_cached(scale, tuple(heuristics), n_jobs)


@lru_cache(maxsize=4)
def _run_comparison_cached(
    scale: ExperimentScale, heuristics: tuple[str, ...], n_jobs: int
) -> ComparisonResults:
    suite = scale.suite()
    jobs = [
        (heuristic, case, e, d)
        for heuristic in heuristics
        for case in CASES
        for e in range(suite.n_etc)
        for d in range(suite.n_dag)
    ]
    if n_jobs > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            outcomes = list(
                pool.map(
                    _solve_cell,
                    [scale] * len(jobs),
                    *zip(*jobs),
                    chunksize=max(1, len(jobs) // (4 * n_jobs)),
                )
            )
    else:
        outcomes = [_solve_cell(scale, *job) for job in jobs]

    results = ComparisonResults(scale_name=scale.name)
    for heuristic in heuristics:
        for case in CASES:
            results.cells[(heuristic, case)] = CaseComparison(
                heuristic=heuristic, case=case
            )
    for outcome in outcomes:
        results.cells[(outcome.heuristic, outcome.case)].outcomes.append(outcome)
    return results
