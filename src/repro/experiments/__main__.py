"""CLI: regenerate the paper's full evaluation report.

Usage::

    python -m repro.experiments [--scale smoke|small|medium|paper]
                                [--only tables|fig2|fig3|fig4|fig5|fig6|fig7]
                                [--out PATH] [--jobs N] [--perf-out PATH]

Prints every table and figure the paper reports (at the selected scale) and
optionally writes the combined report to a file.  Figures 3-7 share one
cached weight-optimisation study, so requesting several of them costs
little more than one.

When the weight-optimisation study runs, its merged performance counters
(plan-cache hit rates, pool sizes, per-phase wall time — see
:mod:`repro.perf`) are written as JSON next to the benchmark artefacts:
``benchmarks/out/perf_<scale>.json`` by default, or ``--perf-out PATH``.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import time

from repro.experiments.comparison import run_comparison
from repro.perf import write_perf_json
from repro.util.parallel import resolve_jobs

from repro.experiments import (
    figure2_delta_t_sweep,
    figure3_weight_sensitivity,
    figure4_t100_comparison,
    figure5_vs_upper_bound,
    figure6_execution_time,
    figure7_value_metric,
)
from repro.experiments.scale import _PRESETS, scale_from_env
from repro.experiments.tables import render_tables

_SECTIONS = ("tables", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7")


def build_report(scale, only: list[str]) -> str:
    parts: list[str] = [
        f"SLRH reproduction report — scale '{scale.name}' "
        f"(|T|={scale.n_tasks}, {scale.n_etc} ETC x {scale.n_dag} DAG)",
    ]
    if "tables" in only:
        parts.append(render_tables(scale))
    if "fig2" in only:
        parts.append(figure2_delta_t_sweep(scale).render())
    if "fig3" in only:
        fig3 = figure3_weight_sensitivity(scale)
        parts.append(fig3.render())
        rate = fig3.slrh2_success_rate()
        if rate is not None:
            parts.append(f"SLRH-2 mapping success rate: {rate:.2f}")
    for key, fn in (
        ("fig4", figure4_t100_comparison),
        ("fig5", figure5_vs_upper_bound),
        ("fig6", figure6_execution_time),
        ("fig7", figure7_value_metric),
    ):
        if key in only:
            parts.append(fn(scale).render())
    return "\n\n".join(parts)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "--scale", choices=sorted(_PRESETS), default=None,
        help="study size (default: $REPRO_SCALE or 'small')",
    )
    parser.add_argument(
        "--only", nargs="*", choices=_SECTIONS, default=list(_SECTIONS),
        help="subset of artefacts to regenerate",
    )
    parser.add_argument("--out", default=None, help="also write the report here")
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the weight-search study (default: "
        "$REPRO_JOBS or serial)",
    )
    parser.add_argument(
        "--perf-out", default=None,
        help="where to write the perf-counter JSON (default: "
        "benchmarks/out/perf_<scale>.json; '-' disables)",
    )
    args = parser.parse_args(argv)
    if args.jobs is not None:
        if args.jobs < 1:
            parser.error(f"--jobs must be >= 1, got {args.jobs}")
        os.environ["REPRO_JOBS"] = str(args.jobs)

    scale = _PRESETS[args.scale] if args.scale else scale_from_env()
    start = time.perf_counter()
    report = build_report(scale, args.only)
    elapsed = time.perf_counter() - start
    report += f"\n\ngenerated in {elapsed:.1f}s"
    print(report)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report + "\n")

    # The comparison study (figures 3-7 / tables) is memoised: if any of
    # those sections ran above, this re-read is free and its counters
    # describe exactly the work done.  Fig2-only runs have no study.
    if args.perf_out != "-" and set(args.only) & {
        "tables", "fig3", "fig4", "fig5", "fig6", "fig7"
    }:
        results = run_comparison(scale)
        path = pathlib.Path(args.perf_out or f"benchmarks/out/perf_{scale.name}.json")
        path.parent.mkdir(parents=True, exist_ok=True)
        write_perf_json(
            path,
            results.perf_snapshot(),
            scale=scale.name,
            jobs=resolve_jobs(None),
            wall_seconds=elapsed,
            command="python -m repro.experiments",
        )
        print(f"perf counters written to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess test
    sys.exit(main())
