"""CLI: regenerate the paper's full evaluation report, or map one scenario.

Usage::

    python -m repro.experiments [--scale smoke|small|medium|paper]
                                [--only tables|fig2|fig3|fig4|fig5|fig6|fig7]
                                [--out PATH] [--jobs N|auto] [--perf-out PATH]

    python -m repro.experiments map (--scenario FILE | --generate N [--seed S])
                                    [--heuristic NAME] [--alpha A --beta B]
                                    [--kernel columnar|incremental|rebuild]
                                    [--out PATH|-] [--ndjson]
                                    [--trace-out TRACE.json] [--ledger-out LOG.ndjson]

    python -m repro.experiments explain LOG.ndjson --task T [--tick K]

    python -m repro.experiments churn-sweep [--n-tasks N] [--delta-t 5,10,20]
                                            [--horizons 50,100] [--rates 5,15,30]
                                            [--out BENCH_churn.json]

The report form prints every table and figure the paper reports (at the
selected scale) and optionally writes the combined report to a file.
Figures 3-7 share one cached weight-optimisation study, so requesting
several of them costs little more than one.

When the weight-optimisation study runs, its merged performance counters
(plan-cache hit rates, pool sizes, per-phase wall time — see
:mod:`repro.perf`) are written as JSON next to the benchmark artefacts:
``benchmarks/out/perf_<scale>.json`` by default, or ``--perf-out PATH``.

The ``map`` form is the batch twin of the :mod:`repro.service` daemon's
``POST /v1/map``: it dispatches through the same registry
(:mod:`repro.heuristics`) and emits the same canonical mapping bytes
(:func:`repro.io.serialization.canonical_mapping_bytes`), so for a fixed
scenario + seed the two surfaces are byte-identical — the service test
suite enforces exactly that.

Observability extras on ``map`` (SLRH family only; neither changes the
mapping bytes): ``--trace-out`` writes a Chrome trace-event JSON of the
span tree (load it in Perfetto / ``chrome://tracing`` to see the whole
mapping — pool build, version select, commit — laid out per tick), and
``--ledger-out`` writes the decision ledger as NDJSON.  The ``explain``
form reads such a ledger back and reports *why* a task landed where it
did — which machines rejected it, at which reason and by what margin.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import time

from repro.experiments.comparison import run_comparison
from repro.perf import write_perf_json
from repro.util.parallel import resolve_jobs

from repro.experiments import (
    figure2_delta_t_sweep,
    figure3_weight_sensitivity,
    figure4_t100_comparison,
    figure5_vs_upper_bound,
    figure6_execution_time,
    figure7_value_metric,
)
from repro.experiments.scale import _PRESETS, scale_from_env
from repro.experiments.tables import render_tables

_SECTIONS = ("tables", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7")


def map_main(argv: list[str] | None = None) -> int:
    """The ``map`` subcommand: run one registry heuristic on one scenario."""
    from repro.heuristics import HEURISTIC_NAMES, run_heuristic
    from repro.io.serialization import (
        canonical_mapping_bytes,
        iter_mapping_ndjson,
        scenario_from_dict,
        scenario_to_dict,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments map",
        description="Map one scenario with a registry heuristic and emit "
        "canonical mapping JSON (byte-identical to the service's /v1/map).",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--scenario", help="scenario JSON file to map")
    source.add_argument(
        "--generate", type=int, metavar="N",
        help="generate a paper-scaled N-task scenario instead of loading one",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="seed for --generate (default: 0)",
    )
    parser.add_argument(
        "--heuristic", default="slrh1",
        help=f"registry heuristic to run (one of: {', '.join(HEURISTIC_NAMES)})",
    )
    parser.add_argument("--alpha", type=float, default=None, help="objective α")
    parser.add_argument("--beta", type=float, default=None, help="objective β")
    parser.add_argument(
        "--kernel", default=None, choices=("columnar", "incremental", "rebuild"),
        help="candidate-pool maintenance mode for the scheduling kernel "
        "(default: $REPRO_KERNEL or 'columnar'; mappings are byte-identical "
        "in every mode — 'rebuild' is the differential oracle, 'incremental' "
        "the object-graph delta pool, 'columnar' the flat-array hot path)",
    )
    parser.add_argument(
        "--out", default="-",
        help="mapping output path ('-' streams to stdout; parents created)",
    )
    parser.add_argument(
        "--ndjson", action="store_true",
        help="emit the streamed NDJSON mapping encoding instead of one document",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="TRACE.json",
        help="write a Chrome trace-event JSON of the mapping's span tree "
        "(view in Perfetto; SLRH family only)",
    )
    parser.add_argument(
        "--ledger-out", default=None, metavar="LOG.ndjson",
        help="write the decision ledger (candidate rejections with reason "
        "codes) as NDJSON; read back with the 'explain' subcommand "
        "(SLRH family only)",
    )
    args = parser.parse_args(argv)

    import json as _json

    from repro.heuristics import generate_named_scenario
    from repro.obs.ledger import write_decision_log
    from repro.obs.spans import Tracer

    if args.kernel is not None:
        # The registry builds schedulers with kernel=None, which defers to
        # $REPRO_KERNEL — the flag is just a spelling of that contract.
        os.environ["REPRO_KERNEL"] = args.kernel
    if args.scenario is not None:
        doc = _json.loads(pathlib.Path(args.scenario).read_text())
    else:
        # Round-trip through the document form so the mapped Scenario is
        # bit-for-bit the one a service client would register.
        doc = scenario_to_dict(generate_named_scenario(args.generate, args.seed))
    tracer = Tracer() if args.trace_out else None
    try:
        scenario = scenario_from_dict(doc)
        result = run_heuristic(
            args.heuristic,
            scenario,
            args.alpha,
            args.beta,
            ledger=bool(args.ledger_out),
            tracer=tracer,
        )
    except (KeyError, ValueError) as exc:
        parser.error(str(exc))
    if args.trace_out:
        trace_path = pathlib.Path(args.trace_out)
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        tracer.write_chrome_trace(trace_path)
        print(f"span trace ({len(tracer.events)} events) -> {trace_path}",
              file=sys.stderr)
    if args.ledger_out:
        ledger_path = pathlib.Path(args.ledger_out)
        ledger_path.parent.mkdir(parents=True, exist_ok=True)
        write_decision_log(ledger_path, result)
        print(
            f"decision ledger ({len(result.trace.ledger.records)} rejections) "
            f"-> {ledger_path}",
            file=sys.stderr,
        )
    if args.ndjson:
        payload = b"".join(iter_mapping_ndjson(result.schedule))
    else:
        payload = canonical_mapping_bytes(result.schedule)
    if args.out == "-":
        sys.stdout.buffer.write(payload)
        sys.stdout.buffer.flush()
    else:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_bytes(payload)
        print(
            f"{result.heuristic}: mapped {result.schedule.n_mapped}/"
            f"{scenario.n_tasks} tasks of {scenario.name} "
            f"(success={result.success}) -> {out}"
        )
    return 0


def explain_main(argv: list[str] | None = None) -> int:
    """The ``explain`` subcommand: replay a decision ledger into a "why"
    report for one task (or list the tasks the log knows about)."""
    from repro.obs.ledger import explain_report, explain_tasks, read_decision_log

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments explain",
        description="Explain why a task landed where it did, from a decision "
        "ledger written by `map --ledger-out`.",
    )
    parser.add_argument("log", help="decision-ledger NDJSON file")
    parser.add_argument(
        "--task", type=int, default=None, metavar="T",
        help="task id to explain (omit to list the tasks in the log)",
    )
    parser.add_argument(
        "--tick", type=int, default=None, metavar="K",
        help="restrict the rejection history to heuristic tick K",
    )
    args = parser.parse_args(argv)
    try:
        log = read_decision_log(args.log)
    except OSError as exc:
        parser.error(f"cannot read {args.log}: {exc.strerror or exc}")
    except (ValueError, KeyError) as exc:
        parser.error(str(exc))
    if args.task is None:
        tasks = explain_tasks(log)
        header = log["header"]
        print(
            f"{header.get('scenario', '?')} via {header.get('heuristic', '?')}: "
            f"{len(log['commits'])} commits, {len(log['rejects'])} rejections"
        )
        print(f"tasks: {', '.join(str(t) for t in tasks)}")
        print("rerun with --task T for the per-task report")
        return 0
    try:
        print(explain_report(log, args.task, tick=args.tick))
    except BrokenPipeError:  # report piped into head/less that exited early
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
    return 0


def churn_sweep_main(argv: list[str] | None = None) -> int:
    """The ``churn-sweep`` subcommand: the replan-frequency study
    (incremental streaming session vs per-event from-scratch mapping
    over a ΔT × H × churn-rate grid) plus the 240-task gate cell;
    prints the text figure and writes ``BENCH_churn.json``."""
    import json as _json

    from repro.experiments.churn_sweep import (
        figure_churn,
        measure_gate,
        run_churn_sweep,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments churn-sweep",
        description="Replan-frequency study: streaming-session speedup "
        "over per-event from-scratch mapping, swept over ΔT x H x churn rate.",
    )
    parser.add_argument("--n-tasks", type=int, default=96,
                        help="sweep scenario size (default 96)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--alpha", type=float, default=0.5)
    parser.add_argument("--beta", type=float, default=0.2)
    parser.add_argument("--delta-t", default="5,10,20",
                        help="comma-separated ΔT values (cycles)")
    parser.add_argument("--horizons", default="50,100",
                        help="comma-separated horizon values (cycles)")
    parser.add_argument("--rates", default="5,15,30",
                        help="comma-separated churn rates (events per 100 cycles)")
    parser.add_argument("--max-cycle", type=int, default=60,
                        help="session close cycle (default 60)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="timing repeats per cell (best-of; default 1)")
    parser.add_argument("--gate-tasks", type=int, default=None,
                        help="gate-cell scenario size (default 240; 0 skips "
                        "the gate measurement)")
    parser.add_argument("--out", default="benchmarks/BENCH_churn.json",
                        help="artefact path ('-' disables)")
    args = parser.parse_args(argv)
    try:
        delta_ts = tuple(int(v) for v in args.delta_t.split(",") if v.strip())
        horizons = tuple(int(v) for v in args.horizons.split(",") if v.strip())
        rates = tuple(float(v) for v in args.rates.split(",") if v.strip())
    except ValueError:
        parser.error("--delta-t/--horizons/--rates must be comma-separated numbers")
    if not (delta_ts and horizons and rates):
        parser.error("--delta-t/--horizons/--rates each need at least one value")

    doc = run_churn_sweep(
        n_tasks=args.n_tasks,
        seed=args.seed,
        alpha=args.alpha,
        beta=args.beta,
        delta_ts=delta_ts,
        horizons=horizons,
        rates=rates,
        max_cycle=args.max_cycle,
        repeats=args.repeats,
    )
    gate_tasks = args.gate_tasks
    if gate_tasks != 0:
        doc["gate"] = measure_gate(
            seed=args.seed,
            alpha=args.alpha,
            beta=args.beta,
            **({} if gate_tasks is None else {"n_tasks": gate_tasks}),
            max_cycle=args.max_cycle,
            repeats=args.repeats,
        )
    print(figure_churn(doc))
    if args.out != "-":
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(_json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {out}")
    return 0


def build_report(scale, only: list[str]) -> str:
    parts: list[str] = [
        f"SLRH reproduction report — scale '{scale.name}' "
        f"(|T|={scale.n_tasks}, {scale.n_etc} ETC x {scale.n_dag} DAG)",
    ]
    if "tables" in only:
        parts.append(render_tables(scale))
    if "fig2" in only:
        parts.append(figure2_delta_t_sweep(scale).render())
    if "fig3" in only:
        fig3 = figure3_weight_sensitivity(scale)
        parts.append(fig3.render())
        rate = fig3.slrh2_success_rate()
        if rate is not None:
            parts.append(f"SLRH-2 mapping success rate: {rate:.2f}")
    for key, fn in (
        ("fig4", figure4_t100_comparison),
        ("fig5", figure5_vs_upper_bound),
        ("fig6", figure6_execution_time),
        ("fig7", figure7_value_metric),
    ):
        if key in only:
            parts.append(fn(scale).render())
    return "\n\n".join(parts)


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    from repro.obs.log import configure_from_env

    configure_from_env()
    if argv and argv[0] == "map":
        return map_main(argv[1:])
    if argv and argv[0] == "explain":
        return explain_main(argv[1:])
    if argv and argv[0] == "churn-sweep":
        return churn_sweep_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures "
        "(or `map` one scenario / `explain` a decision ledger; "
        "see `map --help` and `explain --help`).",
    )
    parser.add_argument(
        "--scale", choices=sorted(_PRESETS), default=None,
        help="study size (default: $REPRO_SCALE or 'small')",
    )
    parser.add_argument(
        "--only", nargs="*", choices=_SECTIONS, default=list(_SECTIONS),
        help="subset of artefacts to regenerate",
    )
    parser.add_argument("--out", default=None, help="also write the report here")
    parser.add_argument(
        "--jobs", default=None,
        help="worker processes for the weight-search study: an integer or "
        "'auto' for one per CPU (default: $REPRO_JOBS or serial)",
    )
    parser.add_argument(
        "--perf-out", default=None,
        help="where to write the perf-counter JSON (default: "
        "benchmarks/out/perf_<scale>.json; '-' disables)",
    )
    args = parser.parse_args(argv)
    if args.jobs is not None:
        try:
            jobs = resolve_jobs(args.jobs)
        except ValueError as exc:
            parser.error(f"--jobs: {exc}")
        os.environ["REPRO_JOBS"] = str(jobs)

    scale = _PRESETS[args.scale] if args.scale else scale_from_env()
    start = time.perf_counter()
    report = build_report(scale, args.only)
    elapsed = time.perf_counter() - start
    report += f"\n\ngenerated in {elapsed:.1f}s"
    print(report)
    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(report + "\n")

    # The comparison study (figures 3-7 / tables) is memoised: if any of
    # those sections ran above, this re-read is free and its counters
    # describe exactly the work done.  Fig2-only runs have no study.
    if args.perf_out != "-" and set(args.only) & {
        "tables", "fig3", "fig4", "fig5", "fig6", "fig7"
    }:
        results = run_comparison(scale)
        path = pathlib.Path(args.perf_out or f"benchmarks/out/perf_{scale.name}.json")
        path.parent.mkdir(parents=True, exist_ok=True)
        write_perf_json(
            path,
            results.perf_snapshot(),
            scale=scale.name,
            jobs=resolve_jobs(None),
            wall_seconds=elapsed,
            command="python -m repro.experiments",
        )
        print(f"perf counters written to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess test
    sys.exit(main())
