"""CLI: regenerate the paper's full evaluation report, or map one scenario.

Usage::

    python -m repro.experiments [--scale smoke|small|medium|paper]
                                [--only tables|fig2|fig3|fig4|fig5|fig6|fig7]
                                [--out PATH] [--jobs N|auto] [--perf-out PATH]

    python -m repro.experiments map (--scenario FILE | --generate N [--seed S])
                                    [--heuristic NAME] [--alpha A --beta B]
                                    [--out PATH|-] [--ndjson]

The report form prints every table and figure the paper reports (at the
selected scale) and optionally writes the combined report to a file.
Figures 3-7 share one cached weight-optimisation study, so requesting
several of them costs little more than one.

When the weight-optimisation study runs, its merged performance counters
(plan-cache hit rates, pool sizes, per-phase wall time — see
:mod:`repro.perf`) are written as JSON next to the benchmark artefacts:
``benchmarks/out/perf_<scale>.json`` by default, or ``--perf-out PATH``.

The ``map`` form is the batch twin of the :mod:`repro.service` daemon's
``POST /v1/map``: it dispatches through the same registry
(:mod:`repro.heuristics`) and emits the same canonical mapping bytes
(:func:`repro.io.serialization.canonical_mapping_bytes`), so for a fixed
scenario + seed the two surfaces are byte-identical — the service test
suite enforces exactly that.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import time

from repro.experiments.comparison import run_comparison
from repro.perf import write_perf_json
from repro.util.parallel import resolve_jobs

from repro.experiments import (
    figure2_delta_t_sweep,
    figure3_weight_sensitivity,
    figure4_t100_comparison,
    figure5_vs_upper_bound,
    figure6_execution_time,
    figure7_value_metric,
)
from repro.experiments.scale import _PRESETS, scale_from_env
from repro.experiments.tables import render_tables

_SECTIONS = ("tables", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7")


def map_main(argv: list[str] | None = None) -> int:
    """The ``map`` subcommand: run one registry heuristic on one scenario."""
    from repro.heuristics import HEURISTIC_NAMES, run_heuristic
    from repro.io.serialization import (
        canonical_mapping_bytes,
        iter_mapping_ndjson,
        scenario_from_dict,
        scenario_to_dict,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments map",
        description="Map one scenario with a registry heuristic and emit "
        "canonical mapping JSON (byte-identical to the service's /v1/map).",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--scenario", help="scenario JSON file to map")
    source.add_argument(
        "--generate", type=int, metavar="N",
        help="generate a paper-scaled N-task scenario instead of loading one",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="seed for --generate (default: 0)",
    )
    parser.add_argument(
        "--heuristic", default="slrh1",
        help=f"registry heuristic to run (one of: {', '.join(HEURISTIC_NAMES)})",
    )
    parser.add_argument("--alpha", type=float, default=None, help="objective α")
    parser.add_argument("--beta", type=float, default=None, help="objective β")
    parser.add_argument(
        "--out", default="-",
        help="mapping output path ('-' streams to stdout; parents created)",
    )
    parser.add_argument(
        "--ndjson", action="store_true",
        help="emit the streamed NDJSON mapping encoding instead of one document",
    )
    args = parser.parse_args(argv)

    import json as _json

    from repro.heuristics import generate_named_scenario

    if args.scenario is not None:
        doc = _json.loads(pathlib.Path(args.scenario).read_text())
    else:
        # Round-trip through the document form so the mapped Scenario is
        # bit-for-bit the one a service client would register.
        doc = scenario_to_dict(generate_named_scenario(args.generate, args.seed))
    try:
        scenario = scenario_from_dict(doc)
        result = run_heuristic(args.heuristic, scenario, args.alpha, args.beta)
    except (KeyError, ValueError) as exc:
        parser.error(str(exc))
    if args.ndjson:
        payload = b"".join(iter_mapping_ndjson(result.schedule))
    else:
        payload = canonical_mapping_bytes(result.schedule)
    if args.out == "-":
        sys.stdout.buffer.write(payload)
        sys.stdout.buffer.flush()
    else:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_bytes(payload)
        print(
            f"{result.heuristic}: mapped {result.schedule.n_mapped}/"
            f"{scenario.n_tasks} tasks of {scenario.name} "
            f"(success={result.success}) -> {out}"
        )
    return 0


def build_report(scale, only: list[str]) -> str:
    parts: list[str] = [
        f"SLRH reproduction report — scale '{scale.name}' "
        f"(|T|={scale.n_tasks}, {scale.n_etc} ETC x {scale.n_dag} DAG)",
    ]
    if "tables" in only:
        parts.append(render_tables(scale))
    if "fig2" in only:
        parts.append(figure2_delta_t_sweep(scale).render())
    if "fig3" in only:
        fig3 = figure3_weight_sensitivity(scale)
        parts.append(fig3.render())
        rate = fig3.slrh2_success_rate()
        if rate is not None:
            parts.append(f"SLRH-2 mapping success rate: {rate:.2f}")
    for key, fn in (
        ("fig4", figure4_t100_comparison),
        ("fig5", figure5_vs_upper_bound),
        ("fig6", figure6_execution_time),
        ("fig7", figure7_value_metric),
    ):
        if key in only:
            parts.append(fn(scale).render())
    return "\n\n".join(parts)


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "map":
        return map_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures "
        "(or `map` one scenario; see `map --help`).",
    )
    parser.add_argument(
        "--scale", choices=sorted(_PRESETS), default=None,
        help="study size (default: $REPRO_SCALE or 'small')",
    )
    parser.add_argument(
        "--only", nargs="*", choices=_SECTIONS, default=list(_SECTIONS),
        help="subset of artefacts to regenerate",
    )
    parser.add_argument("--out", default=None, help="also write the report here")
    parser.add_argument(
        "--jobs", default=None,
        help="worker processes for the weight-search study: an integer or "
        "'auto' for one per CPU (default: $REPRO_JOBS or serial)",
    )
    parser.add_argument(
        "--perf-out", default=None,
        help="where to write the perf-counter JSON (default: "
        "benchmarks/out/perf_<scale>.json; '-' disables)",
    )
    args = parser.parse_args(argv)
    if args.jobs is not None:
        try:
            jobs = resolve_jobs(args.jobs)
        except ValueError as exc:
            parser.error(f"--jobs: {exc}")
        os.environ["REPRO_JOBS"] = str(jobs)

    scale = _PRESETS[args.scale] if args.scale else scale_from_env()
    start = time.perf_counter()
    report = build_report(scale, args.only)
    elapsed = time.perf_counter() - start
    report += f"\n\ngenerated in {elapsed:.1f}s"
    print(report)
    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(report + "\n")

    # The comparison study (figures 3-7 / tables) is memoised: if any of
    # those sections ran above, this re-read is free and its counters
    # describe exactly the work done.  Fig2-only runs have no study.
    if args.perf_out != "-" and set(args.only) & {
        "tables", "fig3", "fig4", "fig5", "fig6", "fig7"
    }:
        results = run_comparison(scale)
        path = pathlib.Path(args.perf_out or f"benchmarks/out/perf_{scale.name}.json")
        path.parent.mkdir(parents=True, exist_ok=True)
        write_perf_json(
            path,
            results.perf_snapshot(),
            scale=scale.name,
            jobs=resolve_jobs(None),
            wall_seconds=elapsed,
            command="python -m repro.experiments",
        )
        print(f"perf counters written to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess test
    sys.exit(main())
