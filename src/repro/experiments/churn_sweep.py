"""Replan-frequency study: what does keeping the kernel warm buy?

The paper's receding-horizon argument (§V) is that replanning *often* is
what makes an ad hoc grid tolerable — but replanning often is only
affordable if each replan is cheap.  This study drives one SLRH-1
session through deterministic synthesized grid-event streams
(:func:`repro.session.synthesize_events`: task arrivals, machine losses
and rejoins, quiet advances) and compares, cell by cell over a
ΔT × H × churn-rate grid, the two ways to service the same stream:

* **incremental session** — one persistent columnar kernel across every
  event, fed precise deltas (``note_arrival`` / ``note_rejoin`` /
  ``note_disturbance``) and never re-based (the ``repro.session``
  default);
* **per-event from-scratch** — a fresh rebuild-mode kernel and cold
  plan cache for every inter-event segment, the way a stateless service
  would re-map on each event.

Both arms produce **byte-identical** final mappings (asserted per cell —
the speedup is never bought with a different schedule), so the only
thing that moves is heuristic wall time.  The headline number —
``session_speedup`` at the 240-task gate scale — is a self-normalised
ratio of the two arms on the same machine, which is what
``benchmarks/check_regression.py`` gates (floor 1.5×).

Churn rate is expressed in events per 100 cycles of session lifetime;
half of each stream's events are held-task arrivals, the rest machine
churn and advances (the :func:`~repro.session.synthesize_events` mix).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.objective import Weights
from repro.core.slrh import SLRH1, SlrhConfig
from repro.experiments.reporting import format_table
from repro.heuristics import generate_named_scenario
from repro.io.serialization import canonical_json_bytes, mapping_to_dict
from repro.session import run_with_events, synthesize_events

SCHEMA = "repro.bench.churn/1"

#: The gate criterion mirrored by ``benchmarks/check_regression.py``:
#: the incremental session must beat per-event from-scratch mapping by
#: at least this factor at the gate scale.
GATE_SPEEDUP_FLOOR = 1.5
GATE_N_TASKS = 240

_DEF_DELTA_TS = (5, 10, 20)
_DEF_HORIZONS = (50, 100)
_DEF_RATES = (5.0, 15.0, 30.0)


def _n_events(rate_per_100: float, max_cycle: int) -> int:
    return max(2, int(round(rate_per_100 * max_cycle / 100.0)))


def _measure_cell(
    scenario,
    weights: Weights,
    delta_t: int,
    horizon: int,
    rate: float,
    max_cycle: int,
    seed: int,
    repeats: int = 1,
) -> dict:
    """Both arms on one (ΔT, H, churn-rate) cell; best-of-*repeats*,
    interleaved so machine-speed drift hits both arms equally."""
    n_events = _n_events(rate, max_cycle)
    held, events = synthesize_events(
        scenario, seed=seed, n_events=n_events, max_cycle=max_cycle
    )
    session_cfg = SlrhConfig(
        weights=weights, delta_t_cycles=delta_t, horizon_cycles=horizon
    )
    scratch_cfg = SlrhConfig(
        weights=weights,
        delta_t_cycles=delta_t,
        horizon_cycles=horizon,
        kernel="rebuild",
        plan_cache=False,
    )
    best_session = best_scratch = float("inf")
    session_outcome = scratch_outcome = None
    for _ in range(max(1, repeats)):
        session_outcome = run_with_events(
            scenario, SLRH1(session_cfg), events, pending=held, persistent=True
        )
        scratch_outcome = run_with_events(
            scenario, SLRH1(scratch_cfg), events, pending=held, persistent=False
        )
        best_session = min(best_session, session_outcome.final.heuristic_seconds)
        best_scratch = min(best_scratch, scratch_outcome.final.heuristic_seconds)
    session_bytes = canonical_json_bytes(
        mapping_to_dict(session_outcome.final.schedule)
    )
    scratch_bytes = canonical_json_bytes(
        mapping_to_dict(scratch_outcome.final.schedule)
    )
    if session_bytes != scratch_bytes:
        raise RuntimeError(
            f"ΔT={delta_t} H={horizon} rate={rate}: the incremental session "
            "and the from-scratch replay disagree — the warm-pool path is "
            "broken (byte-identity is the correctness contract)"
        )
    perf = session_outcome.final.schedule.perf
    reuse = perf.get("pool.reuse_hits")
    builds = perf.get("pool.builds")
    return {
        "delta_t_cycles": delta_t,
        "horizon_cycles": horizon,
        "churn_rate_per_100": rate,
        "n_events": len(events),
        "session_seconds": round(best_session, 6),
        "scratch_seconds": round(best_scratch, 6),
        "speedup": round(best_scratch / best_session, 4)
        if best_session > 0
        else 0.0,
        "n_mapped": session_outcome.final.schedule.n_mapped,
        "rolled_back": session_outcome.total_rolled_back,
        "pool_reuse_hits": reuse,
        "pool_builds": builds,
        "identical": True,
    }


def run_churn_sweep(
    n_tasks: int = 96,
    seed: int = 7,
    alpha: float = 0.5,
    beta: float = 0.2,
    delta_ts: Sequence[int] = _DEF_DELTA_TS,
    horizons: Sequence[int] = _DEF_HORIZONS,
    rates: Sequence[float] = _DEF_RATES,
    max_cycle: int = 60,
    repeats: int = 1,
) -> dict:
    """The full ΔT × H × churn-rate sweep; returns the artefact document
    (without the gate section — see :func:`measure_gate`)."""
    scenario = generate_named_scenario(n_tasks, seed)
    weights = Weights.from_alpha_beta(alpha, beta)
    cells = [
        _measure_cell(
            scenario, weights, dt, h, rate, max_cycle, seed, repeats=repeats
        )
        for dt in delta_ts
        for h in horizons
        for rate in rates
    ]
    return {
        "schema": SCHEMA,
        "scenario": {
            "n_tasks": n_tasks,
            "seed": seed,
            "alpha": alpha,
            "beta": beta,
            "max_cycle": max_cycle,
        },
        "heuristic": "slrh1",
        "repeats": repeats,
        "sweep": cells,
    }


def measure_gate(
    seed: int = 7,
    alpha: float = 0.5,
    beta: float = 0.2,
    n_tasks: int = GATE_N_TASKS,
    rate: float = 15.0,
    max_cycle: int = 60,
    repeats: int = 1,
) -> dict:
    """The regression-gate measurement: one 240-task cell at the default
    (ΔT, H) with moderate churn.  ``session_speedup`` is the number
    ``check_regression.py`` holds against :data:`GATE_SPEEDUP_FLOOR`."""
    scenario = generate_named_scenario(n_tasks, seed)
    weights = Weights.from_alpha_beta(alpha, beta)
    cell = _measure_cell(
        scenario, weights, 10, 100, rate, max_cycle, seed, repeats=repeats
    )
    return {
        "n_tasks": n_tasks,
        "seed": seed,
        "alpha": alpha,
        "beta": beta,
        "churn_rate_per_100": rate,
        "max_cycle": max_cycle,
        "n_events": cell["n_events"],
        "session_seconds": cell["session_seconds"],
        "scratch_seconds": cell["scratch_seconds"],
        "session_speedup": cell["speedup"],
        "identical": cell["identical"],
        "criterion": f"session_speedup >= {GATE_SPEEDUP_FLOOR}",
    }


def figure_churn(doc: dict) -> str:
    """Text figure: the sweep as an aligned table plus the gate line."""
    rows = [
        (
            c["delta_t_cycles"],
            c["horizon_cycles"],
            c["churn_rate_per_100"],
            c["n_events"],
            c["session_seconds"] * 1e3,
            c["scratch_seconds"] * 1e3,
            c["speedup"],
            c["n_mapped"],
            c["rolled_back"],
        )
        for c in doc["sweep"]
    ]
    scenario = doc["scenario"]
    table = format_table(
        (
            "dT", "H", "churn/100cyc", "events",
            "session ms", "scratch ms", "speedup", "mapped", "rolled back",
        ),
        rows,
        title=(
            "Replan-frequency study (SLRH-1, "
            f"{scenario['n_tasks']} tasks, seed {scenario['seed']}): "
            "incremental session vs per-event from-scratch mapping\n"
            "(final mappings byte-identical in every cell)"
        ),
    )
    gate = doc.get("gate")
    if gate:
        table += (
            f"\n\ngate @ {gate['n_tasks']} tasks: "
            f"session {gate['session_seconds']*1e3:.1f}ms  "
            f"from-scratch {gate['scratch_seconds']*1e3:.1f}ms  "
            f"speedup {gate['session_speedup']:.2f}x "
            f"(floor {GATE_SPEEDUP_FLOOR}x)"
        )
    return table
