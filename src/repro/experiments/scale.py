"""Experiment scale presets.

The paper's full protocol — |T| = 1024 subtasks, 10 ETC × 10 DAG scenarios,
an exhaustive 0.1-then-0.02 weight grid, three grid cases, four heuristics —
costs days in pure Python (the paper's own Figure 6 reports several hundred
seconds *per single mapping* on 2004 hardware, and a weight search performs
dozens of mappings per scenario).  Experiments therefore default to the
proportional-shrink protocol (see
:func:`repro.workload.scenario.paper_scaled_spec`): |T|, τ and every battery
scale together, preserving the paper's resource regime.

Select a preset with ``REPRO_SCALE`` (``smoke`` / ``small`` / ``medium`` /
``paper``) or pass an :class:`ExperimentScale` explicitly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache

from repro.workload.scenario import ScenarioSuite, paper_scaled_suite


@dataclass(frozen=True)
class ExperimentScale:
    """Everything a driver needs to size a study.

    Attributes
    ----------
    name:
        Preset label (used as the cache key for the shared comparison run).
    n_tasks / n_etc / n_dag / seed:
        Workload protocol size (paper: 1024 / 10 / 10).
    coarse_step / fine_step / fine:
        Weight-search resolution (§VII; paper: 0.1 / 0.02 / refinement on).
    delta_t_values:
        ΔT ladder for the Figure 2 sweep, in cycles.
    include_slrh2:
        Whether the weight-sensitivity stage also runs SLRH-2 (the paper
        ran it, found it rarely succeeds, and dropped it from the plots).
    """

    name: str
    n_tasks: int
    n_etc: int
    n_dag: int
    seed: int = 0
    coarse_step: float = 0.1
    fine_step: float = 0.02
    fine: bool = True
    delta_t_values: tuple[int, ...] = (1, 2, 5, 10, 20, 50, 100, 200)
    include_slrh2: bool = True

    def __post_init__(self) -> None:
        if self.n_tasks < 2 or self.n_etc < 1 or self.n_dag < 1:
            raise ValueError("degenerate experiment scale")

    def suite(self) -> ScenarioSuite:
        """The (cached) scenario suite for this scale."""
        return _suite_cache(self.name, self.n_tasks, self.n_etc, self.n_dag, self.seed)


@lru_cache(maxsize=8)
def _suite_cache(name: str, n_tasks: int, n_etc: int, n_dag: int, seed: int) -> ScenarioSuite:
    return paper_scaled_suite(n_tasks, n_etc=n_etc, n_dag=n_dag, seed=seed)


#: Seconds-scale preset for CI smoke runs.
SMOKE_SCALE = ExperimentScale(
    name="smoke", n_tasks=24, n_etc=1, n_dag=1,
    coarse_step=0.25, fine=False,
    delta_t_values=(1, 5, 10, 50, 200, 1000, 4000),
)

#: Default preset: minutes-scale, preserves every qualitative shape.
SMALL_SCALE = ExperimentScale(
    name="small", n_tasks=48, n_etc=2, n_dag=2,
    coarse_step=0.2, fine=False,
    delta_t_values=(1, 2, 5, 10, 20, 50, 100, 200, 1000, 4000),
)

#: Tens-of-minutes preset for closer quantitative comparison.
MEDIUM_SCALE = ExperimentScale(
    name="medium", n_tasks=96, n_etc=3, n_dag=3,
    coarse_step=0.1, fine=False,
)

#: The paper's protocol, unabridged.  Expect very long runtimes.
PAPER_SCALE = ExperimentScale(
    name="paper", n_tasks=1024, n_etc=10, n_dag=10,
    coarse_step=0.1, fine_step=0.02, fine=True,
)

_PRESETS = {s.name: s for s in (SMOKE_SCALE, SMALL_SCALE, MEDIUM_SCALE, PAPER_SCALE)}


def scale_from_env(default: ExperimentScale = SMALL_SCALE) -> ExperimentScale:
    """Resolve the active preset from ``REPRO_SCALE`` (default: small)."""
    key = os.environ.get("REPRO_SCALE", "").strip().lower()
    if not key:
        return default
    if key not in _PRESETS:
        raise KeyError(
            f"REPRO_SCALE={key!r} unknown; expected one of {sorted(_PRESETS)}"
        )
    return _PRESETS[key]
