"""Top-level CLI alias: ``python -m repro`` → the experiments report CLI."""

import sys

from repro.experiments.__main__ import main

if __name__ == "__main__":
    sys.exit(main())
