"""Aggregate statistics over a finished schedule."""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.sim.schedule import Schedule
from repro.workload.versions import Version


@dataclass(frozen=True)
class ScheduleStats:
    """One-glance summary of a mapping's quality and balance."""

    n_mapped: int
    t100: int
    makespan: float
    total_energy: float
    #: Execution seconds committed per machine.
    load: tuple[float, ...]
    #: Fraction of makespan each machine spends computing.
    utilisation: tuple[float, ...]
    #: max(load) / mean(load) — 1.0 is perfectly balanced.
    imbalance: float
    #: Fraction of battery consumed per machine.
    energy_fraction: tuple[float, ...]
    #: Mapped subtasks per machine.
    tasks_per_machine: tuple[int, ...]
    #: Total bits moved between machines and the time spent doing so.
    comm_bits: float
    comm_seconds: float

    @property
    def version_mix(self) -> float:
        """Fraction of mapped subtasks at the primary version."""
        return self.t100 / self.n_mapped if self.n_mapped else 0.0


def compute_stats(schedule: Schedule) -> ScheduleStats:
    """Derive :class:`ScheduleStats` from *schedule* (no mutation)."""
    scenario = schedule.scenario
    n = scenario.n_machines
    load = [schedule.machine_load(j) for j in range(n)]
    counts = [0] * n
    comm_bits = 0.0
    comm_seconds = 0.0
    for a in schedule.assignments.values():
        counts[a.machine] += 1
        for c in a.comms:
            comm_bits += c.bits
            comm_seconds += c.duration
    makespan = schedule.makespan
    mean_load = sum(load) / n if n else 0.0
    return ScheduleStats(
        n_mapped=schedule.n_mapped,
        t100=schedule.t100,
        makespan=makespan,
        total_energy=schedule.total_energy_consumed,
        load=tuple(load),
        utilisation=tuple(
            (l / makespan if makespan > 0 else 0.0) for l in load
        ),
        imbalance=(max(load) / mean_load) if mean_load > 0 else 1.0,
        energy_fraction=tuple(
            schedule.energy.consumed(j) / scenario.grid[j].battery for j in range(n)
        ),
        tasks_per_machine=tuple(counts),
        comm_bits=comm_bits,
        comm_seconds=comm_seconds,
    )


@dataclass(frozen=True)
class EnergyProfile:
    """Cumulative energy consumption sampled at schedule-event boundaries.

    ``times[k]`` is an event instant; ``consumed[j][k]`` the energy machine
    *j* has physically spent by that instant, attributing execution and
    transmission energy linearly over each activity's interval.
    """

    times: tuple[float, ...]
    consumed: tuple[tuple[float, ...], ...]

    def at(self, machine: int, t: float) -> float:
        """Consumption of *machine* at time *t* (linear interpolation)."""
        times = self.times
        series = self.consumed[machine]
        if not times or t <= times[0]:
            return 0.0
        if t >= times[-1]:
            return series[-1]
        i = bisect.bisect_right(times, t)
        t0, t1 = times[i - 1], times[i]
        y0, y1 = series[i - 1], series[i]
        if t1 <= t0:
            return y1
        return y0 + (y1 - y0) * (t - t0) / (t1 - t0)


def energy_profile(schedule: Schedule, samples: int = 0) -> EnergyProfile:
    """Build the cumulative per-machine energy curve for *schedule*.

    With ``samples > 0`` the curve is resampled onto an even grid of that
    many points over [0, makespan]; otherwise the natural event boundaries
    are used.
    """
    scenario = schedule.scenario
    n = scenario.n_machines
    # Collect (start, end, machine, rate) power intervals.
    intervals: list[tuple[float, float, int, float]] = []
    for a in schedule.assignments.values():
        intervals.append((a.start, a.finish, a.machine, scenario.grid[a.machine].compute_rate))
        for c in a.comms:
            intervals.append((c.start, c.finish, c.src, scenario.grid[c.src].transmit_rate))

    boundaries = sorted({0.0, *(s for s, *_ in intervals), *(e for _, e, *_ in intervals)})
    if samples > 0:
        end = boundaries[-1] if boundaries else 0.0
        boundaries = [end * k / (samples - 1) for k in range(samples)] if samples > 1 else [0.0]

    series = [[0.0] * len(boundaries) for _ in range(n)]
    for start, end, machine, rate in intervals:
        if end <= start:
            continue
        for k, t in enumerate(boundaries):
            overlap = min(t, end) - start
            if overlap > 0:
                series[machine][k] += rate * min(overlap, end - start)
    return EnergyProfile(
        times=tuple(boundaries),
        consumed=tuple(tuple(s) for s in series),
    )
