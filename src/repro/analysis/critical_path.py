"""Critical-path analytics: makespan lower bounds and schedule slack.

The §VI upper bound limits *T100*; nothing in the paper bounds the
*makespan*.  These helpers fill that gap and power schedule-quality
diagnostics:

* :func:`critical_path_bound` — a provable lower bound on any complete
  mapping's AET: along every DAG path, each subtask costs at least its
  best-machine execution time (at the given version policy), and inter-task
  data must either move at the system's *fastest* link or be co-located
  (cost 0, the relaxation).  The longest such path bounds the makespan
  from below.
* :func:`schedule_slack` — per-task slack of a concrete schedule: how much
  a task could slip without moving the makespan, computed over the
  realised dependence graph (DAG edges plus same-machine seriation).
  Zero-slack tasks form the schedule's critical chain.
* :func:`efficiency` — bound/achieved makespan ratio in (0, 1]; 1.0 means
  the schedule is provably optimal in time.
"""

from __future__ import annotations

from repro.sim.schedule import Schedule
from repro.workload.scenario import Scenario
from repro.workload.versions import PRIMARY, Version


def critical_path_bound(scenario: Scenario, version: Version = PRIMARY) -> float:
    """Lower bound on the AET of any schedule running every subtask at
    *version* (PRIMARY gives the bound for all-primary mappings; SECONDARY
    bounds any complete mapping, since secondary is the cheapest way to
    run anything)."""
    etc_best = scenario.etc.min(axis=1) * version.scale
    # Communication relaxation: zero (co-location is always permitted).
    dag = scenario.dag
    finish = [0.0] * scenario.n_tasks
    for task in dag.topological_order:
        ready = max(
            (finish[p] for p in dag.parents[task]),
            default=0.0,
        )
        ready = max(ready, scenario.release(task))
        finish[task] = ready + float(etc_best[task])
    return max(finish) if finish else 0.0


def realized_critical_path_bound(schedule: Schedule) -> float:
    """Makespan lower bound for *this schedule's own version choices*.

    Same relaxation as :func:`critical_path_bound` (best machine per task,
    free communication) but each mapped subtask is costed at the version
    the schedule actually committed — the fair yardstick for judging how
    much of a schedule's makespan is unavoidable dependence vs scheduling
    loss.  Unmapped subtasks cost their secondary (cheapest) version.
    """
    scenario = schedule.scenario
    etc_best = scenario.etc.min(axis=1)
    dag = scenario.dag
    finish = [0.0] * scenario.n_tasks
    for task in dag.topological_order:
        a = schedule.assignments.get(task)
        scale = a.version.scale if a is not None else Version.SECONDARY.scale
        ready = max((finish[p] for p in dag.parents[task]), default=0.0)
        ready = max(ready, scenario.release(task))
        finish[task] = ready + float(etc_best[task]) * scale
    return max(finish) if finish else 0.0


def efficiency(schedule: Schedule, version: Version | None = None) -> float:
    """Bound/achieved makespan ratio for a complete schedule (≤ 1).

    With *version* ``None`` (default) the bound uses the schedule's own
    version choices (:func:`realized_critical_path_bound`); passing an
    explicit version compares against the uniform-version bound instead.
    """
    if not schedule.is_complete:
        raise ValueError("efficiency is defined for complete schedules only")
    if schedule.makespan <= 0:
        return 1.0
    if version is None:
        bound = realized_critical_path_bound(schedule)
    else:
        bound = critical_path_bound(schedule.scenario, version)
    return bound / schedule.makespan


def schedule_slack(schedule: Schedule) -> dict[int, float]:
    """Per-task slack against the schedule's own makespan.

    Edges considered: DAG precedence (child start ≥ parent finish and
    ≥ each incoming transfer's finish, which itself follows the parent)
    and same-machine seriation (next task on the machine starts no earlier
    than the previous finishes).  Slack(t) = latest-allowable-finish(t) −
    actual finish(t); tasks with ~zero slack form the critical chain.
    """
    assignments = schedule.assignments
    if not assignments:
        return {}
    makespan = schedule.makespan

    # Successor lists under both edge families, with the minimum gap the
    # successor's start keeps from this task's finish.
    succs: dict[int, list[tuple[int, float]]] = {t: [] for t in assignments}
    dag = schedule.scenario.dag
    for t, a in assignments.items():
        for c in dag.children[t]:
            ca = assignments.get(c)
            if ca is not None:
                succs[t].append((c, ca.start - a.finish))
    by_machine: dict[int, list] = {}
    for t, a in assignments.items():
        by_machine.setdefault(a.machine, []).append((a.start, t))
    for entries in by_machine.values():
        entries.sort()
        for (s1, t1), (s2, t2) in zip(entries, entries[1:]):
            gap = assignments[t2].start - assignments[t1].finish
            succs[t1].append((t2, gap))

    # Latest allowable finish, backward over reverse-topological order of
    # actual finish times.
    laf = {t: makespan for t in assignments}
    for t in sorted(assignments, key=lambda x: -assignments[x].finish):
        for c, gap in succs[t]:
            candidate = laf[c] - assignments[c].duration - gap
            if candidate < laf[t]:
                laf[t] = candidate
    return {t: laf[t] - assignments[t].finish for t in assignments}


def critical_chain(schedule: Schedule, tolerance: float = 1e-6) -> list[int]:
    """Tasks with (near-)zero slack, ordered by start time."""
    slack = schedule_slack(schedule)
    chain = [t for t, s in slack.items() if s <= tolerance]
    return sorted(chain, key=lambda t: schedule.assignments[t].start)
