"""Monospace Gantt rendering for small schedules.

Useful when debugging a mapping by eye: one row per machine execution
calendar (plus optional rows for the comm channels), time quantised into a
fixed number of character columns.  Task ids are printed where they fit;
busy time without room for a label renders as ``#``.
"""

from __future__ import annotations

from repro.sim.schedule import Schedule


def _paint(row: list[str], start: float, end: float, label: str, scale: float) -> None:
    c0 = int(round(start * scale))
    c1 = max(c0 + 1, int(round(end * scale)))
    c1 = min(c1, len(row))
    for c in range(c0, c1):
        if 0 <= c < len(row):
            row[c] = "#"
    text = label[: c1 - c0]
    for k, ch in enumerate(text):
        if 0 <= c0 + k < len(row):
            row[c0 + k] = ch


def render_gantt(
    schedule: Schedule,
    width: int = 100,
    channels: bool = False,
) -> str:
    """Render *schedule* as a monospace Gantt chart.

    Parameters
    ----------
    width:
        Number of character columns the makespan is quantised into.
    channels:
        Also render each machine's outgoing-channel activity.
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    scenario = schedule.scenario
    horizon = max(schedule.makespan, 1e-9)
    scale = width / horizon

    exec_rows = [[" "] * width for _ in range(scenario.n_machines)]
    out_rows = [[" "] * width for _ in range(scenario.n_machines)]
    for a in schedule.assignments.values():
        label = f"{a.task}" if a.version.counts_toward_t100 else f"{a.task}'"
        _paint(exec_rows[a.machine], a.start, a.finish, label, scale)
        for c in a.comms:
            _paint(out_rows[c.src], c.start, c.finish, "~", scale)

    name_width = max(len(m.name) for m in scenario.grid) + 5
    lines = [
        f"t = 0 .. {horizon:.1f}s, {width} cols "
        f"(secondary versions marked with ')"
    ]
    for j, machine in enumerate(scenario.grid):
        lines.append(f"{machine.name:>{name_width}} |{''.join(exec_rows[j])}|")
        if channels:
            lines.append(f"{machine.name + ' out':>{name_width}} |{''.join(out_rows[j])}|")
    return "\n".join(lines)
