"""Post-hoc schedule analytics: load balance, energy profiles, Gantt text.

These helpers consume finished :class:`~repro.sim.schedule.Schedule` objects
(or :class:`~repro.core.slrh.MappingResult`) and produce the derived views
a practitioner inspects: per-machine load and imbalance, energy consumption
over time, version mix, and a monospace Gantt chart for small instances.
"""

from repro.analysis.critical_path import (
    critical_chain,
    critical_path_bound,
    efficiency,
    realized_critical_path_bound,
    schedule_slack,
)
from repro.analysis.gantt import render_gantt
from repro.analysis.stats import (
    EnergyProfile,
    ScheduleStats,
    compute_stats,
    energy_profile,
)

__all__ = [
    "ScheduleStats",
    "compute_stats",
    "EnergyProfile",
    "energy_profile",
    "render_gantt",
    "critical_path_bound",
    "realized_critical_path_bound",
    "efficiency",
    "schedule_slack",
    "critical_chain",
]
